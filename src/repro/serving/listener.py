"""Asyncio socket front end for the query service.

``repro serve --listen HOST:PORT`` binds a TCP server speaking the
exact JSON-lines wire format of the stdin loop
(:func:`repro.serving.server.serve_lines`): one JSON query per line
in, one JSON response per line out, errors as the standardized
envelope.  Many clients connect concurrently; each connection's
queries are answered strictly in order (FIFO per connection), while
the CPU-bound query work runs on a thread pool via
``run_in_executor`` so the event loop keeps accepting connections.

Three pieces:

* :class:`QueryServer` — the asyncio server itself (lives on an event
  loop; ``repro serve --listen`` drives it directly);
* :class:`ServerThread` — a context manager that runs a
  :class:`QueryServer` on a background thread, for tests and
  benchmarks that need a live socket without owning a loop;
* :class:`LineClient` — a minimal blocking client used by the
  concurrent-serving benchmark and the listener tests.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Any, Mapping

from repro.serving.admission import AdmissionController, AdmissionError
from repro.serving.cache import MISS, GenerationCache
from repro.serving.server import error_envelope, respond_line
from repro.serving.service import QueryService

#: Cap on one wire line; longer lines fail the connection, not the server.
MAX_LINE_BYTES = 1 << 20

#: Serialized responses kept in the wire-level cache (per server).
DEFAULT_WIRE_CACHE_SIZE = 1024


class QueryServer:
    """TCP JSON-lines server over one :class:`QueryService`.

    Must be started from a running event loop (``await start()``).
    ``port=0`` binds an ephemeral port; read :attr:`address` after
    start.  When ``admission`` is given, each connection's peer
    address is its client identity for per-client rate limits.

    Repeated identical queries are served from a **wire-level cache**
    of serialized response bytes, keyed by the raw request line under
    the generation stamp observed *before* computing — the same
    stamp-before-read protocol as the service's result cache, so a
    table write invalidates cached responses and a stale answer can
    never be served.  Hits skip JSON parsing, query dispatch, and the
    executor round trip entirely (the dominant per-request cost for a
    dashboard-style workload that asks the same questions over and
    over); only successful responses are cached, so admission
    rejections and errors are always computed per request.
    """

    def __init__(self, service: QueryService, *, host: str = "127.0.0.1",
                 port: int = 0,
                 admission: AdmissionController | None = None,
                 wire_cache_size: int = DEFAULT_WIRE_CACHE_SIZE) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._admission = admission
        self._wire_cache = GenerationCache(maxsize=wire_cache_size)
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port, limit=MAX_LINE_BYTES,
        )
        return self.address

    async def close(self) -> None:
        """Stop accepting connections and wait for the socket to close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Block (asynchronously) serving connections until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve one connection: FIFO request/response until EOF."""
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break  # oversized line: drop this connection
                if not raw:
                    break
                key = raw.strip()
                if not key:
                    continue
                # Fast path: an identical line answered under the
                # current stamp — serve the cached bytes inline (a
                # dict lookup, no parse/dispatch/executor hop).
                stamp = self._service.generation_stamp()
                cached = self._wire_cache.get(key, stamp)
                if cached is not MISS:
                    rejection = self._admit_only(client)
                    writer.write(cached if rejection is None else rejection)
                    await writer.drain()
                    continue
                line = raw.decode("utf-8", errors="replace")
                response = await loop.run_in_executor(
                    None, self._respond, line, client,
                )
                if response is None:
                    continue
                encoded = (
                    json.dumps(response, sort_keys=True) + "\n"
                ).encode()
                if response.get("ok") is True:
                    # Stored under the pre-compute stamp: at worst the
                    # entry is older than the data and recomputes next
                    # time — never served stale.
                    self._wire_cache.put(key, stamp, encoded)
                writer.write(encoded)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _admit_only(self, client: str) -> bytes | None:
        """Count one admitted query for a wire-cache hit, or reject.

        Returns ``None`` when admitted, else the serialized rejection
        envelope — cached answers still consume the client's tokens
        and respect the in-flight bound.
        """
        if self._admission is None:
            return None
        try:
            with self._admission.admit(client):
                return None
        except AdmissionError as error:
            envelope = error_envelope(error.kind, error)
            return (json.dumps(envelope, sort_keys=True) + "\n").encode()

    def _respond(self, line: str, client: str) -> Mapping[str, Any] | None:
        """Thread-pool body: decode, admit, execute, serialize one line."""
        return respond_line(self._service, line,
                            admission=self._admission, client=client)


class ServerThread:
    """Run a :class:`QueryServer` on a background thread.

    Context manager: entering starts the loop + server and returns
    ``self`` with :attr:`address` bound; exiting stops the server and
    joins the thread.  Used by tests and the concurrent benchmark to
    stand up a real socket without owning an event loop.
    """

    def __init__(self, service: QueryService, *, host: str = "127.0.0.1",
                 port: int = 0,
                 admission: AdmissionController | None = None) -> None:
        self._server = QueryServer(service, host=host, port=port,
                                   admission=admission)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.address: tuple[str, int] | None = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("query server failed to start within 10s")
        return self

    def __exit__(self, *exc: object) -> None:
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def _run(self) -> None:
        """Thread body: own an event loop for the server's lifetime."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        """Start, publish the address, then park until told to stop."""
        self.address = await self._server.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self._server.close()


class LineClient:
    """Minimal blocking JSON-lines client for tests and benchmarks."""

    def __init__(self, address: tuple[str, int],
                 timeout: float = 30.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one query object and block for its response object."""
        self._file.write((json.dumps(payload) + "\n").encode())
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return json.loads(raw)

    def send_raw(self, line: str) -> dict[str, Any]:
        """Send one raw line (possibly malformed) and read the response."""
        self._file.write((line.rstrip("\n") + "\n").encode())
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return json.loads(raw)

    def close(self) -> None:
        """Close the socket."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""The CDI serving layer: sharded rollups + concurrent typed queries.

The read path of the repro (paper Section V/VI): the daily job writes
the ``vm_cdi``/``event_cdi`` tables, :class:`RollupStore` routes each
day partition to a :class:`RollupShard` (its own generation-stamped
cache), and :class:`QueryService` answers typed queries (point
lookup, range scan, group-by, top-K, trend) — fanning multi-day
queries out across shards on a thread pool under a
snapshot-validate-retry protocol so merges are never torn.  In front
sit :class:`AdmissionController` (bounded in-flight + per-client
token buckets) and two front ends speaking one JSON-lines wire
format: the stdin loop (:func:`serve_lines`) and the asyncio socket
server (:class:`QueryServer`).  See ``ARCHITECTURE.md`` and DESIGN.md
§11/§13 for the protocols.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionStats,
    OverloadedError,
    RateLimitedError,
    TokenBucket,
)
from repro.serving.cache import MISS, CacheStats, GenerationCache
from repro.serving.listener import LineClient, QueryServer, ServerThread
from repro.serving.rollups import (
    CATEGORIES,
    DEFAULT_SHARD_CACHE_SIZE,
    PartitionRollup,
    RollupShard,
    RollupStore,
    aggregate_arrays,
    event_aggregates,
    group_reports,
    rank_leaderboard,
    report_from_arrays,
    sequential_sum,
    top_damaged,
)
from repro.serving.server import (
    QUERY_KINDS,
    error_envelope,
    parse_query,
    respond_line,
    run_query,
    serve_lines,
    to_jsonable,
)
from repro.serving.service import (
    SNAPSHOT_RETRIES,
    CategoryTrendQuery,
    EventSeriesQuery,
    FleetQuery,
    FleetRangeQuery,
    GroupByQuery,
    Query,
    QueryService,
    ServiceUnavailableError,
    TopEventsQuery,
    TopVmsQuery,
    VmQuery,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionStats",
    "CATEGORIES",
    "CacheStats",
    "CategoryTrendQuery",
    "DEFAULT_SHARD_CACHE_SIZE",
    "EventSeriesQuery",
    "FleetQuery",
    "FleetRangeQuery",
    "GenerationCache",
    "GroupByQuery",
    "LineClient",
    "MISS",
    "OverloadedError",
    "PartitionRollup",
    "QUERY_KINDS",
    "Query",
    "QueryServer",
    "QueryService",
    "RateLimitedError",
    "RollupShard",
    "RollupStore",
    "SNAPSHOT_RETRIES",
    "ServerThread",
    "ServiceUnavailableError",
    "TokenBucket",
    "TopEventsQuery",
    "TopVmsQuery",
    "VmQuery",
    "aggregate_arrays",
    "error_envelope",
    "event_aggregates",
    "group_reports",
    "parse_query",
    "rank_leaderboard",
    "report_from_arrays",
    "respond_line",
    "run_query",
    "sequential_sum",
    "serve_lines",
    "to_jsonable",
    "top_damaged",
]

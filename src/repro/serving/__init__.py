"""The CDI serving layer: materialized rollups + cached typed queries.

The read path of the repro (paper Section V/VI): the daily job writes
the ``vm_cdi``/``event_cdi`` tables, :class:`RollupStore` materializes
multi-grain aggregates from their column blocks, and
:class:`QueryService` answers typed queries (point lookup, range
scan, group-by, top-K, trend) through a generation-stamped LRU cache
that table writes invalidate.  See ``ARCHITECTURE.md`` and DESIGN.md
§11 for the protocol.
"""

from repro.serving.cache import MISS, CacheStats, GenerationCache
from repro.serving.rollups import (
    CATEGORIES,
    PartitionRollup,
    RollupStore,
    aggregate_arrays,
    event_aggregates,
    group_reports,
    rank_leaderboard,
    report_from_arrays,
    sequential_sum,
    top_damaged,
)
from repro.serving.server import (
    QUERY_KINDS,
    parse_query,
    run_query,
    serve_lines,
    to_jsonable,
)
from repro.serving.service import (
    CategoryTrendQuery,
    EventSeriesQuery,
    FleetQuery,
    FleetRangeQuery,
    GroupByQuery,
    Query,
    QueryService,
    TopEventsQuery,
    TopVmsQuery,
    VmQuery,
)

__all__ = [
    "CATEGORIES",
    "CacheStats",
    "CategoryTrendQuery",
    "EventSeriesQuery",
    "FleetQuery",
    "FleetRangeQuery",
    "GenerationCache",
    "GroupByQuery",
    "MISS",
    "PartitionRollup",
    "QUERY_KINDS",
    "Query",
    "QueryService",
    "RollupStore",
    "TopEventsQuery",
    "TopVmsQuery",
    "VmQuery",
    "aggregate_arrays",
    "event_aggregates",
    "group_reports",
    "parse_query",
    "rank_leaderboard",
    "report_from_arrays",
    "run_query",
    "sequential_sum",
    "serve_lines",
    "to_jsonable",
    "top_damaged",
]

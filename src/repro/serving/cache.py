"""Generation-stamped LRU result cache for the query service.

A cached entry is valid only while the write generations of the
tables it was computed from are unchanged
(:attr:`repro.storage.table.Table.generation`): lookups compare the
caller's current stamp against the stored one and treat a mismatch as
a miss, dropping the stale entry.  Eviction is least-recently-used.

The cache is thread-safe; the stamp discipline (snapshot generations
*before* reading table data, writers bump generations *after*
mutating) guarantees a stale result can never be revalidated — see
:class:`repro.serving.rollups.RollupStore` for the full protocol.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one :class:`GenerationCache` (a point-in-time copy).

    ``lookups`` is counted independently of the hit/miss split, so
    ``hits + misses == lookups`` is a real consistency invariant — the
    concurrency suite hammers one cache from many threads and asserts
    it never drifts.
    """

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    lookups: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class GenerationCache:
    """Thread-safe LRU cache whose entries carry a generation stamp."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple[Any, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0
        self._lookups = 0

    def get(self, key: Hashable, stamp: Any) -> Any:
        """The cached value for ``key`` at ``stamp``, else :data:`MISS`.

        An entry stored under a different stamp counts as an
        invalidation (the underlying tables changed) and is removed.
        """
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISS
            stored_stamp, value = entry
            if stored_stamp != stamp:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return MISS
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, stamp: Any, value: Any) -> None:
        """Store ``value`` for ``key`` at ``stamp``, evicting LRU entries."""
        with self._lock:
            self._entries[key] = (stamp, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/invalidation/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses,
                invalidations=self._invalidations,
                evictions=self._evictions, size=len(self._entries),
                lookups=self._lookups,
            )

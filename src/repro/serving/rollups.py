"""Materialized multi-grain rollups over the daily job's output tables.

The production BI system (paper Section V) serves the CDI to
interactive consumers — incident evaluation, architecture comparison,
FY trend dashboards — by slicing the two output tables at query time.
This module is the materialization layer underneath that read path:

* vectorized **kernels** computing Formula 4 aggregates, group-bys,
  top-K rankings, and event-name leaderboards directly over column
  arrays (shared with the row-based helpers in
  :mod:`repro.pipeline.bi` and :mod:`repro.pipeline.reports`);
* :class:`PartitionRollup` — every rollup grain of one day partition
  (fleet, per-category, per-dimension, per-VM, top-K damaged VMs,
  event-name leaderboard), materialized from the columnar blocks in
  one vectorized sweep;
* :class:`RollupShard` — one shard of the rollup plane: a bounded,
  generation-stamped LRU of the rollups for the partitions it owns;
* :class:`RollupStore` — the sharded rollup cache: partitions hash to
  disjoint shards, stamps come from the tables' write generations so
  any table write invalidates exactly the partitions it touched
  (:meth:`repro.storage.table.Table.partition_generation`).

Exactness contract: every kernel is **float-identical** to the
row-at-a-time reference implementations
(:func:`repro.pipeline.daily.fleet_report_from_rows`,
:func:`repro.core.indicator.aggregate`) — the differential suite in
``tests/serving`` enforces byte-identical answers across all compute
paths.  The key trick is :func:`sequential_sum`: elementwise products
are vectorized, but the final reduction preserves the reference's
left-to-right accumulation order (``np.cumsum`` materializes every
prefix, so it is sequential by construction — unlike ``np.sum``,
whose pairwise summation rounds differently).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.indicator import CdiReport
from repro.serving.cache import MISS, CacheStats, GenerationCache
from repro.storage.table import Table, TableStore

#: ``resolver(vm_id)`` → dimension attributes (e.g. region/az/cluster).
DimensionResolver = Callable[[str], Mapping[str, str]]

#: The three CDI sub-metrics, named as in the ``vm_cdi`` schema.
CATEGORIES = ("unavailability", "performance", "control_plane")


def sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float64 sum of ``values``.

    Float-identical to a scalar accumulation loop starting at ``0.0``
    — the reduction order of Formula 4's reference implementations —
    while staying a single vectorized numpy call.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.cumsum(array)[-1])


def _check_service_time(service_time: np.ndarray) -> None:
    """Reject negative service times like the reference aggregators do."""
    negative = service_time < 0
    if negative.any():
        bad = float(service_time[int(np.argmax(negative))])
        raise ValueError(f"negative service time {bad}")


def report_from_arrays(service_time: np.ndarray, unavailability: np.ndarray,
                       performance: np.ndarray,
                       control_plane: np.ndarray) -> CdiReport:
    """Formula 4 over parallel ``vm_cdi`` column arrays.

    Float-identical to :func:`repro.pipeline.daily.
    fleet_report_from_rows` on the same rows in the same order: the
    per-row products are the same scalar float64 multiplies, and each
    accumulator reduces left to right.
    """
    _check_service_time(service_time)
    total = sequential_sum(service_time)
    if total == 0.0:
        return CdiReport(unavailability=0.0, performance=0.0,
                         control_plane=0.0, service_time=total)
    return CdiReport(
        unavailability=sequential_sum(service_time * unavailability) / total,
        performance=sequential_sum(service_time * performance) / total,
        control_plane=sequential_sum(service_time * control_plane) / total,
        service_time=total,
    )


def aggregate_arrays(service_time: np.ndarray, values: np.ndarray) -> float:
    """Formula 4 over ``(service_time, value)`` pairs.

    Float-identical to :func:`repro.core.indicator.aggregate` over the
    same pairs in the same order.
    """
    _check_service_time(service_time)
    denominator = sequential_sum(service_time)
    if denominator == 0.0:
        return 0.0
    return sequential_sum(service_time * values) / denominator


def group_reports(keys: Sequence[Any], service_time: np.ndarray,
                  unavailability: np.ndarray, performance: np.ndarray,
                  control_plane: np.ndarray) -> dict[str, CdiReport]:
    """Formula 4 per group key, sorted by key; ``None`` keys skipped.

    ``keys[i]`` labels row ``i`` (e.g. the row's region).  Row order is
    preserved within each group, so the per-group reports are
    float-identical to filtering the rows and aggregating each subset
    with the reference loop — the semantics of
    :func:`repro.pipeline.bi.aggregate_by`.
    """
    groups: dict[str, list[int]] = {}
    for index, key in enumerate(keys):
        if key is None:
            continue
        groups.setdefault(key, []).append(index)
    reports: dict[str, CdiReport] = {}
    for key in sorted(groups):
        take = np.asarray(groups[key], dtype=np.intp)
        reports[key] = report_from_arrays(
            service_time[take], unavailability[take],
            performance[take], control_plane[take],
        )
    return reports


def event_aggregates(names: Sequence[str], service_time: np.ndarray,
                     cdi: np.ndarray) -> dict[str, float]:
    """Formula 4 fleet aggregate per event name, keyed in sorted order.

    ``names[i]`` is the event name of ``event_cdi`` row ``i``; row
    order is preserved within each name, matching a filtered
    :func:`repro.core.indicator.aggregate` per name.
    """
    groups: dict[str, list[int]] = {}
    for index, name in enumerate(names):
        groups.setdefault(name, []).append(index)
    aggregates: dict[str, float] = {}
    for name in sorted(groups):
        take = np.asarray(groups[name], dtype=np.intp)
        aggregates[name] = aggregate_arrays(service_time[take], cdi[take])
    return aggregates


def rank_leaderboard(aggregates: Mapping[str, float],
                     limit: int) -> list[tuple[str, float]]:
    """Rank name → value aggregates: value descending, insertion-stable.

    With ``aggregates`` keyed in sorted-name order this reproduces
    :func:`repro.pipeline.reports.top_event_contributors` exactly —
    ties stay in alphabetical order because the sort is stable — and
    zero/negative contributors are filtered after the cut like the
    reference does.
    """
    ranked = sorted(aggregates.items(), key=lambda pair: -pair[1])
    return [(name, value) for name, value in ranked[:limit] if value > 0]


def top_damaged(labels: np.ndarray, values: np.ndarray,
                k: int) -> list[tuple[str, float]]:
    """Top-``k`` labels by value: descending, ties by label ascending.

    Zero-damage entries are excluded — a VM with no damage in a
    category is not "damaged", however high it ranks by tie-break.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    keep = values > 0
    if not keep.any():
        return []
    kept_labels = labels[keep]
    kept_values = values[keep]
    order = np.lexsort((kept_labels, -kept_values))[:k]
    return [
        (str(kept_labels[i]), float(kept_values[i])) for i in order.tolist()
    ]


class PartitionRollup:
    """Every rollup grain of one day partition, from one columnar read.

    Construction performs the single vectorized sweep: the ``vm_cdi``
    and ``event_cdi`` column blocks are gathered once, the fleet
    report, per-category top-K rankings, and event-name aggregates are
    materialized eagerly, and the remaining grains (per-VM index,
    per-dimension group-bys) fill in lazily on first use.  Instances
    are immutable snapshots of one table generation — invalidation is
    the :class:`RollupStore`'s job.
    """

    def __init__(self, partition: str, vm_blocks: Mapping[str, Any],
                 event_blocks: Mapping[str, Any],
                 resolver: DimensionResolver | None) -> None:
        self.partition = partition
        self._resolver = resolver
        self._vms = np.asarray(vm_blocks["vm"].values, dtype=object)
        self._service_time = np.asarray(
            vm_blocks["service_time"].values, dtype=np.float64
        )
        self._values = {
            category: np.asarray(vm_blocks[category].values, dtype=np.float64)
            for category in CATEGORIES
        }
        event_names = [str(n) for n in event_blocks["event"].values.tolist()]
        self.fleet: CdiReport = report_from_arrays(
            self._service_time, self._values["unavailability"],
            self._values["performance"], self._values["control_plane"],
        )
        self.event_values: dict[str, float] = event_aggregates(
            event_names,
            np.asarray(event_blocks["service_time"].values, dtype=np.float64),
            np.asarray(event_blocks["cdi"].values, dtype=np.float64),
        )
        self._rankings = {
            category: top_damaged(self._vms, self._values[category],
                                  k=max(1, len(self._vms)))
            for category in CATEGORIES
        }
        self._vm_index: dict[str, int] | None = None
        self._group_bys: dict[str, dict[str, CdiReport]] = {}

    @property
    def vm_count(self) -> int:
        """Number of ``vm_cdi`` rows (VMs in service) this day."""
        return len(self._vms)

    def vm_report(self, vm: str) -> dict[str, Any] | None:
        """Point lookup: the ``vm_cdi`` row of one VM, or ``None``."""
        index = self._vm_index
        if index is None:
            index = {vm_id: i for i, vm_id in enumerate(self._vms.tolist())}
            self._vm_index = index
        i = index.get(vm)
        if i is None:
            return None
        row: dict[str, Any] = {"vm": str(self._vms[i])}
        for category in CATEGORIES:
            row[category] = float(self._values[category][i])
        row["service_time"] = float(self._service_time[i])
        return row

    def top_vms(self, category: str, k: int) -> list[tuple[str, float]]:
        """Top-``k`` most damaged VMs of one sub-metric."""
        if category not in CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self._rankings[category][:k]

    def event_leaderboard(self, limit: int) -> list[tuple[str, float]]:
        """Event names ranked by their fleet-level CDI contribution."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        return rank_leaderboard(self.event_values, limit)

    def event_value(self, event: str) -> float:
        """Fleet-level CDI of one event name (``0.0`` when absent)."""
        return self.event_values.get(event, 0.0)

    def group_by(self, dimension: str) -> dict[str, CdiReport]:
        """Formula 4 per value of one topology dimension.

        Requires a dimension resolver; results are cached per
        dimension (benign if two threads race — both compute the same
        immutable value).
        """
        cached = self._group_bys.get(dimension)
        if cached is not None:
            return cached
        if self._resolver is None:
            raise ValueError(
                "group-by queries need a dimension resolver "
                "(RollupStore(..., resolver=fleet.dimensions_of))"
            )
        resolver = self._resolver
        keys = [resolver(vm).get(dimension) for vm in self._vms.tolist()]
        reports = group_reports(
            keys, self._service_time, self._values["unavailability"],
            self._values["performance"], self._values["control_plane"],
        )
        self._group_bys[dimension] = reports
        return reports


#: Per-shard rollup LRU capacity: bounds memory during long backfills.
DEFAULT_SHARD_CACHE_SIZE = 64


class RollupShard:
    """One shard of the rollup plane: the day partitions it owns.

    A shard's rollups live in a bounded generation-stamped LRU
    (:class:`~repro.serving.cache.GenerationCache`): the key is the
    partition, the stamp the ``(vm_cdi, event_cdi)`` partition
    generations observed *before* reading the data.  A backfill that
    keeps bumping a partition's generation therefore *replaces* that
    partition's entry instead of accumulating superseded rollups, and
    a backfill that keeps creating fresh partitions is bounded by LRU
    eviction — the store can never grow without limit.

    Shards share nothing but the (thread-safe) underlying tables, so
    the query service can fan sub-queries out to them on a thread pool
    without cross-shard lock contention.
    """

    def __init__(self, index: int, vm_table: Table, event_table: Table,
                 resolver: DimensionResolver | None,
                 cache_size: int = DEFAULT_SHARD_CACHE_SIZE) -> None:
        self.index = index
        self._vm_table = vm_table
        self._event_table = event_table
        self._resolver = resolver
        self._cache = GenerationCache(maxsize=cache_size)

    def partition_stamp(self, partition: str) -> tuple[int, int]:
        """Current ``(vm_cdi, event_cdi)`` generations of one partition."""
        return (
            self._vm_table.partition_generation(partition),
            self._event_table.partition_generation(partition),
        )

    def rollup(self, partition: str) -> PartitionRollup:
        """The (cached) rollup of one day partition this shard owns.

        The stamp is read *before* the data, so a rollup can at worst
        carry a stamp older than its data (recomputed needlessly next
        time), never newer (served stale).  Two threads racing on a
        cold partition both build the same immutable value — benign.
        """
        stamp = self.partition_stamp(partition)
        cached = self._cache.get(partition, stamp)
        if cached is not MISS:
            return cached
        rollup = PartitionRollup(
            partition,
            self._vm_table.columns(partition=partition),
            self._event_table.columns(partition=partition),
            self._resolver,
        )
        self._cache.put(partition, stamp, rollup)
        return rollup

    @property
    def cached_rollups(self) -> int:
        """Number of rollups currently held (bounded by the LRU)."""
        return len(self._cache)

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/invalidation counters of this shard's rollup LRU."""
        return self._cache.stats

    def invalidate(self) -> None:
        """Drop this shard's cached rollups (rebuilt lazily on access)."""
        self._cache.clear()


class RollupStore:
    """Sharded per-partition rollups over the two output tables.

    Day partitions are assigned to ``shards`` disjoint
    :class:`RollupShard` instances by a stable hash of the partition
    label, so the assignment is deterministic across processes and
    restarts.  Each shard caches its partitions' rollups independently
    (its own lock, its own bounded LRU) — see :class:`RollupShard` for
    the generation-stamp staleness argument, and DESIGN.md §13 for the
    cross-shard snapshot-consistency protocol the query service builds
    on :meth:`partition_stamps`.

    ``shards=1`` (the default) degenerates to the original single-
    store behaviour; every answer is byte-identical either way because
    a partition's rollup is always built whole by exactly one shard.
    """

    def __init__(self, tables: TableStore, *,
                 resolver: DimensionResolver | None = None,
                 shards: int = 1,
                 shard_cache_size: int = DEFAULT_SHARD_CACHE_SIZE) -> None:
        # Deferred to break the import cycle: pipeline.bi consumes the
        # kernels above at module import, before pipeline.tables exists.
        from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._vm_table = tables.get(VM_CDI_TABLE)
        self._event_table = tables.get(EVENT_CDI_TABLE)
        self._resolver = resolver
        self._shards = tuple(
            RollupShard(index, self._vm_table, self._event_table, resolver,
                        cache_size=shard_cache_size)
            for index in range(shards)
        )

    @property
    def resolver(self) -> DimensionResolver | None:
        """The topology dimension resolver, if configured."""
        return self._resolver

    @property
    def shard_count(self) -> int:
        """Number of shards partitions are distributed over."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[RollupShard, ...]:
        """The shard objects (read-only view for tests/benchmarks)."""
        return self._shards

    def shard_of(self, partition: str) -> int:
        """Deterministic shard index owning one partition label.

        CRC32 of the label, not :func:`hash` — Python randomizes string
        hashing per process, and the assignment must agree across
        processes (and with any persisted artifacts naming shards).
        """
        return zlib.crc32(partition.encode("utf-8")) % len(self._shards)

    def generation_stamp(self) -> tuple[int, int]:
        """Current ``(vm_cdi, event_cdi)`` table write generations."""
        return (self._vm_table.generation, self._event_table.generation)

    def partition_stamps(self,
                         partitions: Sequence[str]) -> tuple[tuple[int, int], ...]:
        """Per-partition ``(vm_gen, event_gen)`` stamps, atomically per table.

        Each table's generations are snapshotted under its generation
        lock, so a writer cannot bump one of the requested partitions
        halfway through a table's snapshot.  The query service takes
        this before and after a cross-shard read: equal stamps prove no
        involved partition changed mid-merge.
        """
        vm_gens = self._vm_table.partition_generations(partitions)
        event_gens = self._event_table.partition_generations(partitions)
        return tuple(zip(vm_gens, event_gens))

    def days(self) -> list[str]:
        """All day partitions present in either output table, sorted."""
        return sorted(
            set(self._vm_table.partitions) | set(self._event_table.partitions)
        )

    def rollup(self, partition: str) -> PartitionRollup:
        """The (cached) rollup of one day partition, via its owning shard.

        A partition absent from both tables yields an all-zero rollup
        — the same answer a direct recompute over its (empty) rows
        gives.
        """
        return self._shards[self.shard_of(partition)].rollup(partition)

    @property
    def cached_rollups(self) -> int:
        """Total rollups held across all shards (bounded by the LRUs)."""
        return sum(shard.cached_rollups for shard in self._shards)

    def invalidate(self) -> None:
        """Drop every cached rollup (they rebuild lazily on access)."""
        for shard in self._shards:
            shard.invalidate()

"""JSON wire format and serving loop for the query service.

``repro query`` and ``repro serve`` speak this format: a query is a
JSON object with a ``kind`` plus the fields of the corresponding
typed query dataclass, a response is ``{"ok": true, "kind": ...,
"result": ...}`` (or ``{"ok": false, "error": ...}``).  The functions
here are plain and stream-agnostic so tests drive them without a
subprocess.

Example::

    {"kind": "fleet", "day": "day00"}
    {"kind": "top-vms", "day": "day00", "category": "performance", "k": 3}
    {"kind": "group-by", "day": "day01", "dimension": "region"}
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Mapping

from repro.core.indicator import CdiReport
from repro.serving.service import (
    CategoryTrendQuery,
    EventSeriesQuery,
    FleetQuery,
    FleetRangeQuery,
    GroupByQuery,
    Query,
    QueryService,
    TopEventsQuery,
    TopVmsQuery,
    VmQuery,
)

#: Wire ``kind`` → (query type, required fields, optional fields).
QUERY_KINDS: dict[str, tuple[type, tuple[str, ...], tuple[str, ...]]] = {
    "fleet": (FleetQuery, ("day",), ()),
    "range": (FleetRangeQuery, (), ("start", "end")),
    "trend": (CategoryTrendQuery, ("category",), ()),
    "group-by": (GroupByQuery, ("day", "dimension"), ()),
    "top-vms": (TopVmsQuery, ("day", "category"), ("k",)),
    "top-events": (TopEventsQuery, ("day",), ("k",)),
    "event-series": (EventSeriesQuery, ("event",), ()),
    "vm": (VmQuery, ("day", "vm"), ()),
}


def parse_query(payload: Mapping[str, Any]) -> Query:
    """Build a typed query from one wire payload.

    Raises :class:`ValueError` on an unknown ``kind``, a missing
    required field, or an unexpected field.
    """
    kind = payload.get("kind")
    spec = QUERY_KINDS.get(kind) if isinstance(kind, str) else None
    if spec is None:
        known = ", ".join(sorted(QUERY_KINDS))
        raise ValueError(f"unknown query kind {kind!r} (expected one of {known})")
    query_type, required, optional = spec
    kwargs: dict[str, Any] = {}
    for field in required:
        if field not in payload:
            raise ValueError(f"query kind {kind!r} requires field {field!r}")
        kwargs[field] = payload[field]
    for field in optional:
        if field in payload:
            kwargs[field] = payload[field]
    extra = set(payload) - {"kind", *required, *optional}
    if extra:
        raise ValueError(
            f"unexpected fields for kind {kind!r}: {sorted(extra)}"
        )
    return query_type(**kwargs)


def _report_dict(report: CdiReport) -> dict[str, float]:
    """A ``CdiReport`` as a plain JSON object."""
    return {
        "unavailability": report.unavailability,
        "performance": report.performance,
        "control_plane": report.control_plane,
        "service_time": report.service_time,
    }


def to_jsonable(query: Query, result: Any) -> Any:
    """Convert one query's result into JSON-serializable structures."""
    if isinstance(query, FleetQuery):
        return _report_dict(result)
    if isinstance(query, FleetRangeQuery):
        return [{"day": day, **_report_dict(report)} for day, report in result]
    if isinstance(query, (CategoryTrendQuery, EventSeriesQuery)):
        return [{"day": day, "value": value} for day, value in result]
    if isinstance(query, GroupByQuery):
        return {
            value: _report_dict(report) for value, report in result.items()
        }
    if isinstance(query, TopVmsQuery):
        return [{"vm": vm, "value": value} for vm, value in result]
    if isinstance(query, TopEventsQuery):
        return [{"event": event, "value": value} for event, value in result]
    if isinstance(query, VmQuery):
        return result  # already a plain row dict (or None)
    raise TypeError(f"unknown query type {type(query).__name__}")


def run_query(service: QueryService,
              payload: Mapping[str, Any]) -> dict[str, Any]:
    """Parse, execute, and serialize one wire query.

    Errors come back as ``{"ok": false, "error": ...}`` instead of
    raising, so one bad query never kills a serving loop.
    """
    try:
        query = parse_query(payload)
        result = service.execute(query)
        return {
            "ok": True,
            "kind": payload["kind"],
            "result": to_jsonable(query, result),
        }
    except (TypeError, ValueError, KeyError) as error:
        return {"ok": False, "error": str(error)}


def serve_lines(service: QueryService, lines: Iterable[str],
                write: Callable[[str], Any]) -> int:
    """JSON-lines serving loop: one query per line, one response per line.

    Blank lines are skipped; malformed JSON yields an error response.
    Returns the number of queries answered.  ``repro serve`` runs this
    over stdin/stdout.
    """
    answered = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            response: dict[str, Any] = {
                "ok": False, "error": f"invalid JSON: {error}"
            }
        else:
            if isinstance(payload, Mapping):
                response = run_query(service, payload)
            else:
                response = {"ok": False, "error": "query must be a JSON object"}
        write(json.dumps(response, sort_keys=True))
        answered += 1
    return answered

"""JSON wire format and serving loops for the query service.

``repro query``, ``repro serve`` (stdin/stdout compat mode), and the
socket listener (:mod:`repro.serving.listener`) all speak this format:
a query is a JSON object with a ``kind`` plus the fields of the
corresponding typed query dataclass, a success response is
``{"ok": true, "kind": ..., "result": ...}``, and *every* failure —
malformed JSON, unknown kinds or fields, admission rejections,
snapshot-retry exhaustion — is the standardized error envelope::

    {"ok": false, "error": {"kind": "<stable-kind>", "message": "..."}}

with ``error.kind`` one of ``bad_request`` (the query itself is
wrong), ``overloaded`` / ``rate_limited`` (admission control shed it),
``unavailable`` (no consistent cross-shard snapshot; retry), or
``internal``.  The functions here are plain and stream-agnostic so
tests drive them without a subprocess.

Example::

    {"kind": "fleet", "day": "day00"}
    {"kind": "top-vms", "day": "day00", "category": "performance", "k": 3}
    {"kind": "group-by", "day": "day01", "dimension": "region"}
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Mapping

from repro.core.indicator import CdiReport
from repro.serving.admission import AdmissionController, AdmissionError
from repro.serving.service import (
    CategoryTrendQuery,
    EventSeriesQuery,
    FleetQuery,
    FleetRangeQuery,
    GroupByQuery,
    Query,
    QueryService,
    ServiceUnavailableError,
    TopEventsQuery,
    TopVmsQuery,
    VmQuery,
)

#: Wire ``kind`` → (query type, required fields, optional fields).
QUERY_KINDS: dict[str, tuple[type, tuple[str, ...], tuple[str, ...]]] = {
    "fleet": (FleetQuery, ("day",), ()),
    "range": (FleetRangeQuery, (), ("start", "end")),
    "trend": (CategoryTrendQuery, ("category",), ()),
    "group-by": (GroupByQuery, ("day", "dimension"), ()),
    "top-vms": (TopVmsQuery, ("day", "category"), ("k",)),
    "top-events": (TopEventsQuery, ("day",), ("k",)),
    "event-series": (EventSeriesQuery, ("event",), ()),
    "vm": (VmQuery, ("day", "vm"), ()),
}

#: Stable ``error.kind`` values of the JSON error envelope.
ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERLOADED = "overloaded"
ERROR_RATE_LIMITED = "rate_limited"
ERROR_UNAVAILABLE = "unavailable"
ERROR_INTERNAL = "internal"


def error_envelope(kind: str, message: object) -> dict[str, Any]:
    """The standardized failure response: stable kind + human message."""
    return {"ok": False, "error": {"kind": kind, "message": str(message)}}


def parse_query(payload: Mapping[str, Any]) -> Query:
    """Build a typed query from one wire payload.

    Raises :class:`ValueError` on an unknown ``kind``, a missing
    required field, or an unexpected field.
    """
    kind = payload.get("kind")
    spec = QUERY_KINDS.get(kind) if isinstance(kind, str) else None
    if spec is None:
        known = ", ".join(sorted(QUERY_KINDS))
        raise ValueError(f"unknown query kind {kind!r} (expected one of {known})")
    query_type, required, optional = spec
    kwargs: dict[str, Any] = {}
    for field in required:
        if field not in payload:
            raise ValueError(f"query kind {kind!r} requires field {field!r}")
        kwargs[field] = payload[field]
    for field in optional:
        if field in payload:
            kwargs[field] = payload[field]
    extra = set(payload) - {"kind", *required, *optional}
    if extra:
        raise ValueError(
            f"unexpected fields for kind {kind!r}: {sorted(extra)}"
        )
    return query_type(**kwargs)


def _report_dict(report: CdiReport) -> dict[str, float]:
    """A ``CdiReport`` as a plain JSON object."""
    return {
        "unavailability": report.unavailability,
        "performance": report.performance,
        "control_plane": report.control_plane,
        "service_time": report.service_time,
    }


def to_jsonable(query: Query, result: Any) -> Any:
    """Convert one query's result into JSON-serializable structures."""
    if isinstance(query, FleetQuery):
        return _report_dict(result)
    if isinstance(query, FleetRangeQuery):
        return [{"day": day, **_report_dict(report)} for day, report in result]
    if isinstance(query, (CategoryTrendQuery, EventSeriesQuery)):
        return [{"day": day, "value": value} for day, value in result]
    if isinstance(query, GroupByQuery):
        return {
            value: _report_dict(report) for value, report in result.items()
        }
    if isinstance(query, TopVmsQuery):
        return [{"vm": vm, "value": value} for vm, value in result]
    if isinstance(query, TopEventsQuery):
        return [{"event": event, "value": value} for event, value in result]
    if isinstance(query, VmQuery):
        return result  # already a plain row dict (or None)
    raise TypeError(f"unknown query type {type(query).__name__}")


def run_query(service: QueryService, payload: Mapping[str, Any], *,
              admission: AdmissionController | None = None,
              client: str = "local") -> dict[str, Any]:
    """Parse, admit, execute, and serialize one wire query.

    Errors come back as the standardized envelope instead of raising,
    so one bad query never kills a serving loop.  When ``admission``
    is given the query executes inside an admitted slot for
    ``client``; rejections map to their stable kinds.
    """
    try:
        query = parse_query(payload)
    except (TypeError, ValueError, KeyError) as error:
        return error_envelope(ERROR_BAD_REQUEST, error)
    try:
        if admission is not None:
            with admission.admit(client):
                result = service.execute(query)
        else:
            result = service.execute(query)
    except AdmissionError as error:
        return error_envelope(error.kind, error)
    except ServiceUnavailableError as error:
        return error_envelope(ERROR_UNAVAILABLE, error)
    except (TypeError, ValueError, KeyError) as error:
        # Semantic rejections raised at dispatch time (unknown
        # category/dimension, bad k) are still the client's fault.
        return error_envelope(ERROR_BAD_REQUEST, error)
    return {
        "ok": True,
        "kind": payload["kind"],
        "result": to_jsonable(query, result),
    }


def respond_line(service: QueryService, line: str, *,
                 admission: AdmissionController | None = None,
                 client: str = "local") -> dict[str, Any] | None:
    """One raw wire line → one response object (``None`` for blanks).

    The single decode-validate-execute step shared by every entry
    point (stdin loop, socket listener, tests), so malformed input is
    handled identically everywhere.
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        return error_envelope(ERROR_BAD_REQUEST, f"invalid JSON: {error}")
    if not isinstance(payload, Mapping):
        return error_envelope(ERROR_BAD_REQUEST, "query must be a JSON object")
    return run_query(service, payload, admission=admission, client=client)


def serve_lines(service: QueryService, lines: Iterable[str],
                write: Callable[[str], Any], *,
                admission: AdmissionController | None = None,
                client: str = "stdin") -> int:
    """JSON-lines serving loop: one query per line, one response per line.

    Blank lines are skipped; malformed JSON yields a ``bad_request``
    envelope.  Returns the number of queries answered.  ``repro
    serve`` (without ``--listen``) runs this over stdin/stdout.
    """
    answered = 0
    for line in lines:
        response = respond_line(service, line,
                                admission=admission, client=client)
        if response is None:
            continue
        write(json.dumps(response, sort_keys=True))
        answered += 1
    return answered

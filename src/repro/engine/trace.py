"""Run tracing for the engine and the daily pipeline.

The paper's CloudBot runs the CDI computation as a *monitored*
production Spark job (Section V): engineers watch per-stage timings,
retries, and stragglers in the Spark UI and SLS dashboards.  After the
fault-tolerance PR the mini engine acquired retries, backoff, timeouts,
and chaos injection — and kept exactly one ``perf_counter`` pair of
instrumentation, so a retried, backed-off, chaos-delayed job was
indistinguishable from a clean one.  This module is the missing flight
recorder:

* :class:`TaskAttemptRecord` — one attempt of one task, carrying queue
  / run / backoff / injected-delay durations, the retry cause, and the
  chaos-plan annotation.  Records are produced inside the shared
  attempt loop on **both** executor backends and travel back to the
  driver with the existing per-task result tuples, so process workers
  need no shared state.
* :class:`Span` — a named, nestable wall-clock interval: plan-node
  stages, checkpoint shards, pipeline stages, whole days.
* :class:`RunTrace` — the collector: spans plus attempt records, JSONL
  export/import, a human :meth:`~RunTrace.summary` (critical path,
  slowest stages, retry hot spots, rows/sec per stage), and
  :meth:`~RunTrace.validate` — the completeness contract the chaos
  suite asserts under fault storms: every executed task accounted,
  spans properly nested, attempt durations non-negative and additive.

Timestamps are ``time.monotonic()`` values.  On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide, so records stamped inside
worker processes line up with driver-side spans; elsewhere cross-
process offsets are absorbed by the validation tolerance and clamping.
JSONL export rebases every timestamp onto seconds-since-trace-start.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, ContextManager, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor→trace)
    from repro.engine.executor import JobMetrics

#: Terminal states of one task attempt.  ``"ok"`` is the kept result;
#: the rest mirror :class:`repro.engine.executor.TaskFailure.kind`.
ATTEMPT_STATUSES = ("ok", "error", "timeout", "injected", "dropped")


@dataclass(frozen=True, slots=True)
class TaskAttemptRecord:
    """Accounting for one attempt of one task.

    ``attempt`` is 1-based; a chaos-``duplicate`` speculative execution
    shares its attempt number with the kept execution and is marked
    ``speculative`` (its runtime lies *inside* the kept attempt's wall
    interval but is timed separately, so it never double-counts).
    ``queue_seconds`` is the wait between driver-side submission and
    the first instruction of attempt 1 (0 for later attempts — they
    never re-queue).  ``backoff_seconds`` is the retry sleep taken
    *after* this attempt failed.  ``busy_seconds`` (run + injected
    delay) is what aggregates into
    :attr:`repro.engine.executor.TaskMetrics.seconds`.
    """

    node_name: str
    partition: int
    attempt: int
    job: int = 0
    speculative: bool = False
    started: float = 0.0
    ended: float = 0.0
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    backoff_seconds: float = 0.0
    chaos_delay_seconds: float = 0.0
    status: str = "ok"
    error: str | None = None
    chaos_kind: str | None = None

    @property
    def wall_seconds(self) -> float:
        """Start-to-end wall time of this attempt (excl. backoff)."""
        return self.ended - self.started

    @property
    def busy_seconds(self) -> float:
        """Productive-plus-injected time: task body + chaos delay."""
        return self.run_seconds + self.chaos_delay_seconds


def stamp_job(records: Iterable[TaskAttemptRecord],
              job: int) -> list[TaskAttemptRecord]:
    """Return ``records`` with their ``job`` id set (driver-side fixup
    for process-backend records, which are produced before the worker
    can know which execute() call it serves)."""
    return [replace(r, job=job) for r in records]


@dataclass(slots=True)
class Span:
    """One named wall-clock interval in a run trace."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str                       # "node" | "stage" | "shard" | "day" | ...
    started: float
    ended: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return 0.0 if self.ended is None else self.ended - self.started


class RunTrace:
    """Collector for one traced run: spans + task attempt records.

    Span begin/end calls are expected from the driver thread (pipeline
    code and the executor's stage scheduler both run there); attempt
    records may arrive from pool threads, so all mutation is guarded by
    a lock.  The instance never crosses a process boundary — process
    workers return their records with the task results instead.
    """

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self.origin = time.monotonic()
        self.created_unix = time.time()
        self.spans: list[Span] = []
        self.attempts: list[TaskAttemptRecord] = []
        self._lock = threading.Lock()
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------

    def begin_span(self, name: str, kind: str = "stage",
                   **attributes: Any) -> Span:
        """Open a span nested under the innermost open span."""
        with self._lock:
            parent = self._stack[-1].span_id if self._stack else None
            span = Span(self._next_id, parent, name, kind,
                        time.monotonic(), None, dict(attributes))
            self._next_id += 1
            self.spans.append(span)
            self._stack.append(span)
            return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and any child left open underneath it)."""
        with self._lock:
            ended = time.monotonic()
            while self._stack:
                top = self._stack.pop()
                if top.ended is None:
                    top.ended = ended
                if top is span:
                    break

    @contextmanager
    def span(self, name: str, kind: str = "stage",
             **attributes: Any) -> Iterator[Span]:
        """Context manager form of :meth:`begin_span`/:meth:`end_span`."""
        span = self.begin_span(name, kind, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    def record_attempts(self, records: Iterable[TaskAttemptRecord]) -> None:
        """Append attempt records (thread-safe)."""
        materialized = list(records)
        with self._lock:
            self.attempts.extend(materialized)

    # -- derived views -------------------------------------------------------

    def task_groups(
        self,
    ) -> dict[tuple[int, str, int], list[TaskAttemptRecord]]:
        """Attempt records grouped per task, in attempt order.

        Keyed by ``(job, node_name, partition)`` — the job id
        disambiguates re-executions of identically named plan nodes
        across engine actions (e.g. one resolve stage per checkpoint
        shard).
        """
        groups: dict[tuple[int, str, int], list[TaskAttemptRecord]] = {}
        for record in self.attempts:
            key = (record.job, record.node_name, record.partition)
            groups.setdefault(key, []).append(record)
        for records in groups.values():
            records.sort(key=lambda r: (r.attempt, not r.speculative))
        return groups

    def stage_seconds(self) -> dict[str, float]:
        """Wall seconds aggregated per node/stage span name."""
        totals: dict[str, float] = {}
        for span in self.spans:
            if span.kind in ("node", "stage") and span.ended is not None:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def critical_path(self) -> list[Span]:
        """Dominant span chain: from each level, follow the slowest child."""
        children: dict[int | None, list[Span]] = {}
        for span in self.spans:
            if span.ended is not None:
                children.setdefault(span.parent_id, []).append(span)
        path: list[Span] = []
        cursor: int | None = None
        while True:
            options = children.get(cursor)
            if not options:
                return path
            slowest = max(options, key=lambda s: s.duration)
            path.append(slowest)
            cursor = slowest.span_id

    def retry_hot_spots(self) -> list[tuple[str, int, int, str]]:
        """Tasks with failed attempts: ``(node, partition, count, kinds)``
        sorted most-retried first."""
        counts: dict[tuple[str, int], list[str]] = {}
        for record in self.attempts:
            if record.status != "ok" and not record.speculative:
                key = (record.node_name, record.partition)
                counts.setdefault(key, []).append(record.status)
        spots = [
            (node, partition, len(kinds), ",".join(sorted(set(kinds))))
            for (node, partition), kinds in counts.items()
        ]
        spots.sort(key=lambda s: (-s[2], s[0], s[1]))
        return spots

    def rows_per_second(self) -> dict[str, float]:
        """Output rows per wall second for node spans that counted rows."""
        rows: dict[str, int] = {}
        seconds: dict[str, float] = {}
        for span in self.spans:
            out = span.attributes.get("rows_out")
            if span.kind == "node" and span.ended is not None and out:
                rows[span.name] = rows.get(span.name, 0) + int(out)
                seconds[span.name] = seconds.get(span.name, 0.0) + span.duration
        return {
            name: (rows[name] / seconds[name]) if seconds[name] > 0 else 0.0
            for name in rows
        }

    # -- reporting -----------------------------------------------------------

    def summary(self, top: int = 5) -> str:
        """Human-readable digest: the trace's answer to the Spark UI."""
        tasks = self.task_groups()
        failed = [r for r in self.attempts
                  if r.status != "ok" and not r.speculative]
        speculative = sum(1 for r in self.attempts if r.speculative)
        roots = [s for s in self.spans if s.parent_id is None
                 and s.ended is not None]
        wall = sum(s.duration for s in roots)
        lines = [
            f"run trace {self.name!r}: {len(self.spans)} spans, "
            f"{len(tasks)} tasks, {len(self.attempts)} attempt records",
            f"  wall {wall:.3f}s  failed attempts {len(failed)}"
            f"  speculative {speculative}",
        ]
        path = self.critical_path()
        if path:
            chain = " > ".join(s.name for s in path)
            lines.append(f"critical path: {chain}  ({path[0].duration:.3f}s)")
        stage_totals = sorted(self.stage_seconds().items(),
                              key=lambda kv: -kv[1])
        if stage_totals:
            rates = self.rows_per_second()
            lines.append("slowest stages:")
            for name, seconds in stage_totals[:top]:
                rate = rates.get(name)
                suffix = f"  {rate:,.0f} rows/s" if rate else ""
                lines.append(f"  {name:<24} {seconds * 1000:9.2f} ms{suffix}")
        spots = self.retry_hot_spots()
        if spots:
            lines.append("retry hot spots:")
            for node, partition, count, kinds in spots[:top]:
                lines.append(
                    f"  {node}[{partition}]  {count} failed attempts ({kinds})"
                )
        else:
            lines.append("retry hot spots: none")
        return "\n".join(lines)

    # -- completeness contract ----------------------------------------------

    def validate(self, metrics: "JobMetrics | None" = None, *,
                 tolerance: float = 0.05) -> list[str]:
        """Check the trace's structural invariants; return problems.

        An empty list means the trace is complete and self-consistent:

        * every span closed, with a non-negative duration, nested
          inside its parent's interval (within ``tolerance``);
        * every task's kept attempts are numbered 1..n with only the
          final attempt successful, all durations non-negative, and the
          per-attempt walls + backoffs summing to the task's own
          first-start→last-end interval (within ``tolerance`` plus 5%);
        * every task lies inside a node span of its stage;
        * with ``metrics`` (the executor's accounting for one job):
          every successful task has records whose attempt count and
          cumulative busy seconds match exactly, and every recorded
          failure has a matching failed-attempt record.
        """
        problems: list[str] = []
        by_id: dict[int, Span] = {}
        for span in self.spans:
            by_id[span.span_id] = span
            if span.ended is None:
                problems.append(f"span {span.name!r} was never closed")
            elif span.ended < span.started:
                problems.append(f"span {span.name!r} has negative duration")
        node_spans: dict[tuple[Any, str], Span] = {}
        for span in self.spans:
            if span.ended is None:
                continue
            if span.kind == "node":
                node_spans[(span.attributes.get("job"), span.name)] = span
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if span.parent_id is not None and parent is None:
                problems.append(f"span {span.name!r} has a dangling parent id")
            elif parent is not None and parent.ended is not None:
                if (span.started < parent.started - tolerance
                        or span.ended > parent.ended + tolerance):
                    problems.append(
                        f"span {span.name!r} escapes parent {parent.name!r}"
                    )
        for (job, node, partition), records in self.task_groups().items():
            label = f"task {node}[{partition}] job {job}"
            for record in records:
                if record.status not in ATTEMPT_STATUSES:
                    problems.append(
                        f"{label}: unknown status {record.status!r}"
                    )
                if (record.ended < record.started
                        or min(record.queue_seconds, record.run_seconds,
                               record.backoff_seconds,
                               record.chaos_delay_seconds) < 0):
                    problems.append(
                        f"{label}: negative duration on attempt "
                        f"{record.attempt}"
                    )
            kept = [r for r in records if not r.speculative]
            if not kept:
                problems.append(f"{label}: only speculative records")
                continue
            if [r.attempt for r in kept] != list(range(1, len(kept) + 1)):
                problems.append(f"{label}: attempts are not consecutive")
            if any(r.status == "ok" for r in kept[:-1]):
                problems.append(f"{label}: non-final attempt marked ok")
            span_seconds = kept[-1].ended - kept[0].started
            accounted = sum(r.wall_seconds + r.backoff_seconds for r in kept)
            if abs(span_seconds - accounted) > tolerance + 0.05 * max(
                span_seconds, accounted
            ):
                problems.append(
                    f"{label}: attempts account for {accounted:.4f}s of a "
                    f"{span_seconds:.4f}s task interval"
                )
            node_span = node_spans.get((job, node))
            if node_span is None:
                problems.append(f"{label}: no node span for its stage")
            elif (kept[0].started < node_span.started - tolerance
                  or kept[-1].ended > (node_span.ended or 0.0) + tolerance):
                problems.append(f"{label}: attempts escape the node span")
        if metrics is not None:
            problems.extend(self._validate_against(metrics))
        return problems

    def _validate_against(self, metrics: "JobMetrics") -> list[str]:
        """Cross-check one job's executor accounting against the trace."""
        problems: list[str] = []
        groups = {
            (node, partition): records
            for (job, node, partition), records in self.task_groups().items()
            if job == metrics.job
        }
        for task in metrics.tasks:
            records = groups.get((task.node_name, task.partition))
            label = f"task {task.node_name}[{task.partition}]"
            if records is None:
                problems.append(f"{label}: successful task has no records")
                continue
            kept = [r for r in records if not r.speculative]
            if kept[-1].status != "ok":
                problems.append(f"{label}: final attempt record not ok")
            if len(kept) != task.attempts:
                problems.append(
                    f"{label}: {len(kept)} records for {task.attempts} "
                    "attempts"
                )
            busy = sum(r.busy_seconds for r in kept)
            if abs(busy - task.seconds) > 1e-6:
                problems.append(
                    f"{label}: busy seconds {busy:.6f} != metrics "
                    f"seconds {task.seconds:.6f}"
                )
        for failure in metrics.failures:
            records = groups.get((failure.node_name, failure.partition)) or []
            if not any(r.attempt == failure.attempt and r.status == failure.kind
                       and not r.speculative for r in records):
                problems.append(
                    f"failure {failure.node_name}[{failure.partition}] "
                    f"attempt {failure.attempt} ({failure.kind}) has no "
                    "matching attempt record"
                )
        return problems

    def assert_complete(self, metrics: "JobMetrics | None" = None, *,
                        tolerance: float = 0.05) -> None:
        """Raise ``AssertionError`` listing every validation problem."""
        problems = self.validate(metrics, tolerance=tolerance)
        if problems:
            raise AssertionError(
                "incomplete run trace:\n" + "\n".join(problems)
            )

    # -- persistence ---------------------------------------------------------

    def to_jsonl_lines(self) -> list[str]:
        """Serialize as JSONL: one meta line, then spans, then attempts.

        Timestamps are rebased to seconds since trace start so traces
        from different runs are directly comparable.
        """
        origin = self.origin
        lines = [json.dumps({
            "type": "meta", "version": 1, "name": self.name,
            "created_unix": self.created_unix,
            "spans": len(self.spans), "attempts": len(self.attempts),
        }, sort_keys=True)]
        for span in self.spans:
            lines.append(json.dumps({
                "type": "span", "id": span.span_id,
                "parent": span.parent_id, "name": span.name,
                "kind": span.kind,
                "start": round(span.started - origin, 9),
                "end": (None if span.ended is None
                        else round(span.ended - origin, 9)),
                "attributes": span.attributes,
            }, sort_keys=True))
        for r in self.attempts:
            lines.append(json.dumps({
                "type": "attempt", "node": r.node_name,
                "partition": r.partition, "attempt": r.attempt,
                "job": r.job, "speculative": r.speculative,
                "start": round(r.started - origin, 9),
                "end": round(r.ended - origin, 9),
                "queue": r.queue_seconds, "run": r.run_seconds,
                "backoff": r.backoff_seconds,
                "chaos_delay": r.chaos_delay_seconds,
                "status": r.status, "error": r.error,
                "chaos_kind": r.chaos_kind,
            }, sort_keys=True))
        return lines

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the trace to ``path`` as JSONL, creating parents."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.to_jsonl_lines()) + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunTrace":
        """Load a trace written by :meth:`write_jsonl`.

        The loaded trace's clock origin is 0.0, so all timestamps read
        as seconds since trace start; ``summary()`` and ``validate()``
        work unchanged.
        """
        trace = cls()
        trace.origin = 0.0
        max_id = 0
        for line in Path(path).read_text().splitlines():
            if not line.strip():
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "meta":
                trace.name = obj.get("name", trace.name)
                trace.created_unix = obj.get("created_unix", 0.0)
            elif kind == "span":
                span = Span(obj["id"], obj["parent"], obj["name"],
                            obj["kind"], obj["start"], obj["end"],
                            dict(obj.get("attributes") or {}))
                trace.spans.append(span)
                max_id = max(max_id, span.span_id)
            elif kind == "attempt":
                trace.attempts.append(TaskAttemptRecord(
                    node_name=obj["node"], partition=obj["partition"],
                    attempt=obj["attempt"], job=obj.get("job", 0),
                    speculative=obj.get("speculative", False),
                    started=obj["start"], ended=obj["end"],
                    queue_seconds=obj.get("queue", 0.0),
                    run_seconds=obj.get("run", 0.0),
                    backoff_seconds=obj.get("backoff", 0.0),
                    chaos_delay_seconds=obj.get("chaos_delay", 0.0),
                    status=obj.get("status", "ok"),
                    error=obj.get("error"),
                    chaos_kind=obj.get("chaos_kind"),
                ))
            else:
                raise ValueError(f"unknown trace line type {kind!r}")
        trace._next_id = max_id + 1
        return trace


# -- optional-tracing helpers (no-ops when no trace is attached) -------------


def trace_span(trace: RunTrace | None, name: str, kind: str = "stage",
               **attributes: Any) -> ContextManager[Span | None]:
    """``trace.span(...)`` when tracing, an inert context otherwise."""
    if trace is None:
        return nullcontext(None)
    return trace.span(name, kind, **attributes)


@contextmanager
def executor_tracing(executor: Any, trace: RunTrace | None) -> Iterator[None]:
    """Temporarily point ``executor.trace`` at ``trace``.

    The pipeline threads one :class:`RunTrace` through jobs that share
    a long-lived executor; this scopes the attachment so concurrent
    untraced runs on the same context are unaffected.
    """
    if trace is None:
        yield
        return
    previous = executor.trace
    executor.trace = trace
    try:
        yield
    finally:
        executor.trace = previous

"""Logical plan nodes for the miniature dataset engine.

The paper computes CDI with an Apache Spark application (Section V).
We reproduce the substrate as a small DAG-scheduled engine: a lazy
:class:`~repro.engine.dataset.Dataset` builds a plan out of the nodes
here, and :class:`~repro.engine.executor.LocalExecutor` materializes
it.  Two node families mirror Spark's narrow/wide distinction:

* **narrow** nodes transform each parent partition independently;
* **shuffle** nodes repartition key/value pairs by key hash, forming
  stage boundaries in the executor.
"""

from __future__ import annotations

import itertools
import zlib
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Sequence

_ids = itertools.count()


def stable_hash(key: Any) -> int:
    """Deterministic hash for shuffle partitioning.

    Python's built-in ``hash`` is randomized per process for strings,
    so two worker *processes* of the process-pool backend would
    disagree on which partition a key belongs to.  This hash is stable
    across processes (and runs) for the key types shuffles actually
    use — strings, bytes, ints, bools, None, and tuples thereof — and
    falls back to ``hash`` for anything else (safe under the thread
    backend, which shares one interpreter).
    """
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8", "surrogatepass"))
    if isinstance(key, (bytes, bytearray)):
        return zlib.crc32(key)
    if isinstance(key, bool) or key is None:
        return int(bool(key))
    if isinstance(key, int):
        return key
    if isinstance(key, tuple):
        acc = 0x345678
        for element in key:
            acc = (acc * 1000003) ^ stable_hash(element)
            acc &= 0xFFFFFFFFFFFFFFFF
        return acc
    return hash(key)


def stable_uniform(key: Any) -> float:
    """Deterministic pseudo-uniform draw in ``[0, 1)`` for ``key``.

    :func:`stable_hash` optimizes for speed and process stability, not
    bit diffusion — neighbouring integer keys map to neighbouring
    hashes, which is fine for bucket routing but would make
    probability draws fire all-or-nothing across partitions.  This
    runs the hash through a splitmix64-style finalizer so every key
    bit avalanches into the result, while staying just as stable
    across processes and runs (the property chaos injection and retry
    jitter rely on).
    """
    mixed = stable_hash(key) & 0xFFFFFFFFFFFFFFFF
    mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 31
    return (mixed >> 32) / 2.0**32


class PlanNode(ABC):
    """A node in the logical plan DAG."""

    def __init__(self, name: str, parents: Sequence["PlanNode"],
                 num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.id = next(_ids)
        self.name = name
        self.parents: tuple[PlanNode, ...] = tuple(parents)
        self.num_partitions = num_partitions

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description for plan explain output."""

    def explain(self, indent: int = 0) -> str:
        """Render this subtree as an indented plan listing."""
        lines = [" " * indent + self.describe()]
        for parent in self.parents:
            lines.append(parent.explain(indent + 2))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} #{self.id} {self.name!r}>"


class SourceNode(PlanNode):
    """A materialized in-memory source split into partitions."""

    def __init__(self, chunks: Sequence[Sequence[Any]], name: str = "source") -> None:
        super().__init__(name, parents=(), num_partitions=max(1, len(chunks)))
        self.chunks: tuple[tuple[Any, ...], ...] = tuple(
            tuple(chunk) for chunk in chunks
        ) or ((),)

    def describe(self) -> str:
        rows = sum(len(chunk) for chunk in self.chunks)
        return f"Source[{self.name}] partitions={self.num_partitions} rows={rows}"


class NarrowNode(PlanNode):
    """Per-partition transformation (map/filter/flat_map/mapPartitions).

    ``fn`` receives an iterable over one parent partition and returns an
    iterable of output elements.  With ``indexed=True`` the signature is
    ``fn(partition_index, iterable)`` instead (Spark's
    ``mapPartitionsWithIndex``).  It must be pure: the executor may
    re-run it on retry.
    """

    def __init__(self, parent: PlanNode,
                 fn: Callable[..., Iterable[Any]],
                 name: str, *, indexed: bool = False) -> None:
        super().__init__(name, parents=(parent,),
                         num_partitions=parent.num_partitions)
        self.fn = fn
        self.indexed = indexed

    def describe(self) -> str:
        return f"Narrow[{self.name}] partitions={self.num_partitions}"


class ShuffleNode(PlanNode):
    """Hash repartitioning of key/value pairs — a stage boundary.

    Every element of the parent must be a ``(key, value)`` pair; output
    partition ``hash(key) % num_partitions`` receives all pairs for
    ``key``.  Keys must therefore be hashable.
    """

    def __init__(self, parent: PlanNode, num_partitions: int,
                 name: str = "shuffle") -> None:
        super().__init__(name, parents=(parent,), num_partitions=num_partitions)

    def partition_of(self, key: Any) -> int:
        """Output partition index of ``key`` (stable across processes)."""
        return stable_hash(key) % self.num_partitions

    def describe(self) -> str:
        return f"Shuffle[{self.name}] partitions={self.num_partitions}"


class UnionNode(PlanNode):
    """Concatenation of parent partitions (no data movement)."""

    def __init__(self, parents: Sequence[PlanNode], name: str = "union") -> None:
        if not parents:
            raise ValueError("union requires at least one parent")
        total = sum(p.num_partitions for p in parents)
        super().__init__(name, parents=parents, num_partitions=total)

    def describe(self) -> str:
        return f"Union[{self.name}] partitions={self.num_partitions}"


class GatherNode(PlanNode):
    """Collapse all parent partitions into one (used by global sorts).

    ``fn`` post-processes the gathered sequence (e.g. sorting).
    """

    def __init__(self, parent: PlanNode,
                 fn: Callable[[list[Any]], Iterable[Any]],
                 name: str = "gather") -> None:
        super().__init__(name, parents=(parent,), num_partitions=1)
        self.fn = fn

    def describe(self) -> str:
        return f"Gather[{self.name}]"


def stage_boundaries(node: PlanNode) -> list[PlanNode]:
    """All shuffle/gather nodes in the subtree, in dependency order.

    These are the points where the executor must fully materialize the
    parent before the next stage can start — the engine's equivalent of
    Spark stage splits.
    """
    seen: set[int] = set()
    ordered: list[PlanNode] = []

    def visit(current: PlanNode) -> None:
        if current.id in seen:
            return
        seen.add(current.id)
        for parent in current.parents:
            visit(parent)
        if isinstance(current, (ShuffleNode, GatherNode)):
            ordered.append(current)

    visit(node)
    return ordered

"""Executor-level fault injection for chaos testing.

Distinct from :mod:`repro.telemetry.faults` (which simulates *fleet*
faults — the data the pipeline measures), this module breaks the
*pipeline itself*: a deterministic, seedable injector that the
:class:`~repro.engine.executor.LocalExecutor` consults before and
after every task attempt, so tests can prove the daily job survives
the task-level failures a production Spark cluster sees routinely.

Four fault kinds cover the classic task failure modes:

* ``"crash"`` — the attempt raises :class:`InjectedFault` before the
  task body runs (a worker dying mid-task);
* ``"delay"`` — the attempt sleeps a configured time first (a
  straggler executor);
* ``"duplicate"`` — the task body runs twice and only the second
  result is kept (speculative / zombie re-execution; correct output
  requires tasks to be pure);
* ``"drop"`` — the task body runs but its result is discarded and the
  attempt fails with :class:`DroppedResult` (a lost result channel /
  fetch failure).

The injector is a frozen dataclass built from frozen
:class:`FaultRule` values with no mutable or closure state, so it
pickles cleanly and produces **identical decisions in every worker
process**: each decision is a pure function of
``(seed, rule, node_name, partition, attempt)`` via
:func:`~repro.engine.plan.stable_hash`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Sequence

from repro.engine.plan import stable_uniform

#: Supported injected fault kinds.
FAULT_KINDS = ("crash", "delay", "duplicate", "drop")


class InjectedFault(RuntimeError):
    """A chaos-injected task crash (retryable)."""


class DroppedResult(RuntimeError):
    """A chaos-injected loss of a completed task's result (retryable)."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One injection rule, matched against every task attempt.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    node:
        Plan-node name pattern (``fnmatch`` glob, e.g.
        ``"resolve_*"``); ``None`` matches every node.
    partition:
        Partition index to target; ``None`` matches every partition.
    attempts:
        Inject only on 1-based attempts ``<= attempts`` — ``1`` (the
        default) makes a fault transient (first attempt only), a large
        value makes it effectively permanent.
    probability:
        Chance the rule fires on a matching attempt.  Decided
        deterministically from the injector seed, so the same seed
        reproduces the same fault pattern in any backend.
    delay:
        Sleep length in seconds (``kind="delay"`` only).
    """

    kind: str
    node: str | None = None
    partition: int | None = None
    attempts: int = 1
    probability: float = 1.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.kind == "delay" and self.delay == 0.0:
            raise ValueError('kind="delay" requires a positive delay')

    def matches(self, node_name: str, partition: int, attempt: int) -> bool:
        """Static match (node/partition/attempt window)."""
        if attempt > self.attempts:
            return False
        if self.partition is not None and partition != self.partition:
            return False
        if self.node is not None and not fnmatchcase(node_name, self.node):
            return False
        return True


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What the executor should do to one task attempt.

    ``delay`` seconds of injected sleep (possibly from several delay
    rules), then the single ``kind`` action (``None`` means run the
    task normally after the sleep).
    """

    delay: float = 0.0
    kind: str | None = None


@dataclass(frozen=True, slots=True)
class ChaosInjector:
    """Deterministic executor-level fault injector.

    ``rules`` are evaluated in order for every task attempt; all
    matching ``delay`` rules accumulate sleep time, and the first
    matching rule of any other kind decides the attempt's fate.
    """

    rules: tuple[FaultRule, ...]
    seed: int = 0

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "seed", int(seed))

    def _fires(self, index: int, rule: FaultRule, node_name: str,
               partition: int, attempt: int) -> bool:
        if rule.probability >= 1.0:
            return True
        if rule.probability <= 0.0:
            return False
        draw = stable_uniform(
            (self.seed, index, node_name, partition, attempt)
        )
        return draw < rule.probability

    def plan(self, node_name: str, partition: int,
             attempt: int) -> FaultPlan | None:
        """Decide the fault plan for one task attempt (or ``None``)."""
        delay = 0.0
        kind: str | None = None
        for index, rule in enumerate(self.rules):
            if not rule.matches(node_name, partition, attempt):
                continue
            if not self._fires(index, rule, node_name, partition, attempt):
                continue
            if rule.kind == "delay":
                delay += rule.delay
            elif kind is None:
                kind = rule.kind
        if delay == 0.0 and kind is None:
            return None
        return FaultPlan(delay=delay, kind=kind)

    @classmethod
    def storm(cls, seed: int = 0, *, probability: float = 0.2,
              delay: float = 0.005, attempts: int = 1,
              kinds: Sequence[str] = FAULT_KINDS,
              node: str | None = None) -> "ChaosInjector":
        """A mixed-fault storm: every kind fires with ``probability``.

        The workhorse of the differential chaos suite — one seed
        reproduces one complete storm pattern across all stages of a
        job, on either backend.
        """
        rules = [
            FaultRule(
                kind=kind, node=node, attempts=attempts,
                probability=probability,
                delay=delay if kind == "delay" else 0.0,
            )
            for kind in kinds
        ]
        return cls(rules, seed=seed)

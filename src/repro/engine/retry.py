"""Retry policies for the task executor.

Task failures in the production daily job are routine, not
exceptional: Spark retries a failed task up to
``spark.task.maxFailures`` times, backing off between attempts so a
struggling executor is not immediately re-hammered.  This module
provides the equivalent knob for :class:`~repro.engine.executor.
LocalExecutor` — a pluggable, picklable :class:`RetryPolicy` with
exponential backoff, a delay cap, deterministic jitter, and an
optional per-attempt timeout.

Backoff schedules are **deterministic** (seeded, keyed by task) and
**monotone non-decreasing** by construction: the raw exponential
delay is jittered multiplicatively, then clamped through a running
maximum and the cap.  This keeps chaos tests reproducible — the same
seed always produces the same sleep sequence — while still spreading
retry storms across tasks (each task key draws an independent jitter
stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.engine.plan import stable_uniform


def _unit_interval(seed: int, key: Hashable, attempt: int) -> float:
    """Deterministic pseudo-uniform draw in ``[0, 1)``.

    Derived from :func:`~repro.engine.plan.stable_uniform`, so the
    draw is well-mixed yet identical across worker processes and runs
    — the property that lets the process backend replay the exact same
    backoff schedule.
    """
    return stable_uniform((seed, key, attempt))


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the executor retries, paces, and bounds task attempts.

    Parameters
    ----------
    max_retries:
        Additional attempts after the first failure (Spark's
        ``task.maxFailures - 1``).  ``0`` disables retries.
    base_delay:
        Backoff before the first retry, in seconds.  The default of
        ``0.0`` keeps unit-test jobs instant; production-ish callers
        (the CLI) set a small positive base.
    multiplier:
        Exponential growth factor of the raw backoff.
    max_delay:
        Hard cap on any single backoff delay, in seconds.
    jitter:
        Fractional jitter: each raw delay is scaled by a deterministic
        factor in ``[1, 1 + jitter)``.  Monotonicity of the schedule is
        preserved regardless (see :meth:`schedule`).
    timeout:
        Per-attempt wall-clock timeout in seconds; ``None`` disables.
        A timed-out attempt counts as a failure and is retried.
    seed:
        Seed of the jitter stream (per task key).
    """

    max_retries: int = 2
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0
    timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < 0:
            raise ValueError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be > 0 when set, got {self.timeout}"
            )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (first failure is fatal)."""
        return cls(max_retries=0)

    @property
    def max_attempts(self) -> int:
        """Total attempts a task may take (first run + retries)."""
        return self.max_retries + 1

    def should_retry(self, attempt: int) -> bool:
        """Whether a failure on 1-based ``attempt`` gets another try."""
        return attempt < self.max_attempts

    def delay(self, attempt: int, key: Hashable = None) -> float:
        """Backoff before retry number ``attempt`` (1-based), seconds."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.schedule(attempt, key)[-1]

    def schedule(self, retries: int, key: Hashable = None) -> list[float]:
        """The first ``retries`` backoff delays for one task.

        Monotone non-decreasing and bounded by ``max_delay`` for every
        seed and key: each jittered exponential step is folded through
        a running maximum before the cap, so jitter can spread delays
        without ever shrinking them between consecutive retries.
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        delays: list[float] = []
        previous = 0.0
        raw = self.base_delay
        for attempt in range(1, retries + 1):
            jittered = raw * (1.0 + self.jitter
                              * _unit_interval(self.seed, key, attempt))
            previous = min(self.max_delay, max(previous, jittered))
            delays.append(previous)
            raw *= self.multiplier
        return delays

    def describe(self) -> str:
        """One-line human-readable summary (CLI / logs)."""
        timeout = "none" if self.timeout is None else f"{self.timeout}s"
        return (
            f"retries={self.max_retries} base={self.base_delay}s "
            f"x{self.multiplier} cap={self.max_delay}s "
            f"jitter={self.jitter} timeout={timeout}"
        )


def spark_like_policy(max_retries: int = 3, *,
                      timeout: float | None = None,
                      seed: int = 0) -> RetryPolicy:
    """The production-shaped default: 3 retries, 100ms..10s backoff.

    Mirrors typical ``spark.task.maxFailures=4`` deployments with a
    jittered exponential backoff; used by the CLI's daily runner.
    """
    return RetryPolicy(
        max_retries=max_retries, base_delay=0.1, multiplier=2.0,
        max_delay=10.0, jitter=0.25, timeout=timeout, seed=seed,
    )

"""Task execution for the miniature dataset engine.

The :class:`LocalExecutor` materializes a plan DAG on a worker pool,
one task per partition, with:

* stage-at-a-time scheduling (shuffles fully materialize their input),
* two backends: ``"thread"`` (default; shares the interpreter, right
  for IO-ish stages and for the failure-injection tests) and
  ``"process"`` (a ``ProcessPoolExecutor``, so CPU-bound pure-Python
  stages actually scale with cores instead of serializing on the GIL),
* **chunked task batching** on the process backend: tasks are shipped
  to workers in chunks (one chunk per worker by default) so the
  per-task IPC/pickling overhead is amortized across a whole batch,
* bounded task retries with a pluggable failure injector (used by the
  failure-injection tests; thread backend only),
* per-node task metrics (rows in/out, wall time) mirroring the kind of
  accounting the paper reports for the production Spark job
  (Section V: "core CDI computation time is around 500 seconds").

Both backends produce identical partition contents for deterministic
task functions: tasks are collected in submission (partition) order
and shuffles use a process-stable key hash
(:func:`repro.engine.plan.stable_hash`).

The process backend requires every task function to be picklable —
module-level functions or instances of module-level classes.  The
:mod:`repro.engine.dataset` API builds its transformations out of
picklable adapter objects, so any dataset pipeline whose user
functions are themselves picklable runs on either backend unchanged.
"""

from __future__ import annotations

import math
import pickle
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.plan import (
    GatherNode,
    NarrowNode,
    PlanNode,
    ShuffleNode,
    SourceNode,
    UnionNode,
    stable_hash,
)

#: Hook signature: ``(node_name, partition_index, attempt)``; raise to
#: make that task attempt fail.
FailureInjector = Callable[[str, int, int], None]

#: Supported executor backends.
BACKENDS = ("thread", "process")


class TaskFailedError(RuntimeError):
    """A task exhausted its retries."""


# Thread pools are shared process-wide, like long-lived Spark
# executors: spawning threads per job costs more than an entire small
# job.  The pool only ever grows (to the largest max_workers any
# executor asked for); a replaced pool is not shut down — its idle
# threads drain naturally at interpreter exit.
_thread_pool_lock = threading.Lock()
_thread_pool: ThreadPoolExecutor | None = None
_thread_pool_workers = 0


def _shared_thread_pool(max_workers: int) -> ThreadPoolExecutor:
    global _thread_pool, _thread_pool_workers
    with _thread_pool_lock:
        if _thread_pool is None or _thread_pool_workers < max_workers:
            _thread_pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-engine"
            )
            _thread_pool_workers = max_workers
        return _thread_pool


@dataclass(frozen=True, slots=True)
class TaskMetrics:
    """Accounting for one successful task attempt."""

    node_name: str
    partition: int
    rows_out: int
    seconds: float
    attempts: int


@dataclass
class JobMetrics:
    """Aggregated accounting for one ``execute`` call."""

    tasks: list[TaskMetrics] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        """Total number of successful tasks."""
        return len(self.tasks)

    @property
    def total_rows(self) -> int:
        """Total rows produced across all tasks."""
        return sum(t.rows_out for t in self.tasks)

    @property
    def total_seconds(self) -> float:
        """Sum of task wall times (CPU-seconds analogue)."""
        return sum(t.seconds for t in self.tasks)

    @property
    def retried_tasks(self) -> int:
        """Tasks that needed more than one attempt."""
        return sum(1 for t in self.tasks if t.attempts > 1)

    def by_node(self) -> dict[str, float]:
        """Wall time aggregated per plan-node name."""
        totals: dict[str, float] = {}
        for task in self.tasks:
            totals[task.node_name] = totals.get(task.node_name, 0.0) + task.seconds
        return totals


@dataclass(frozen=True, slots=True)
class _TaskSpec:
    """One schedulable unit: run ``fn(*args)`` for a node partition."""

    node_name: str
    partition: int
    fn: Callable[..., list[Any]]
    args: tuple[Any, ...]


# -- module-level task bodies (picklable for the process backend) -----------


def _narrow_task(fn: Callable[..., Any], indexed: bool, index: int,
                 part: Sequence[Any]) -> list[Any]:
    """Materialize one narrow-node partition."""
    if indexed:
        return list(fn(index, iter(part)))
    return list(fn(iter(part)))


def _bucketize_task(num_partitions: int, name: str,
                    partition: Sequence[Any]) -> list[list[Any]]:
    """Map side of a shuffle: route pairs into output buckets."""
    buckets: list[list[Any]] = [[] for _ in range(num_partitions)]
    for element in partition:
        try:
            key, _ = element
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"shuffle {name!r} requires (key, value) pairs, "
                f"got {element!r}"
            ) from exc
        buckets[stable_hash(key) % num_partitions].append(element)
    return buckets


def _gather_task(fn: Callable[[list[Any]], Any],
                 rows: list[Any]) -> list[Any]:
    """Run a gather node's post-processing function."""
    return list(fn(rows))


def _run_task_chunk(
    specs: Sequence[tuple[str, int, Callable[..., list[Any]], tuple[Any, ...]]],
    max_task_retries: int,
) -> list[tuple[TaskMetrics | None, list[Any] | None, str | None]]:
    """Worker-side body of one chunk: run each task with retries.

    Returns one ``(metrics, result, error)`` triple per task, in input
    order.  Errors are stringified so un-picklable user exceptions
    cannot poison the result channel back to the parent.
    """
    out: list[tuple[TaskMetrics | None, list[Any] | None, str | None]] = []
    for name, partition, fn, args in specs:
        last_error: str | None = None
        done = False
        for attempt in range(1, max_task_retries + 2):
            started = time.perf_counter()
            try:
                result = fn(*args)
            except Exception as exc:  # noqa: BLE001 - retry any task error
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            elapsed = time.perf_counter() - started
            metrics = TaskMetrics(
                node_name=name, partition=partition, rows_out=len(result),
                seconds=elapsed, attempts=attempt,
            )
            out.append((metrics, result, None))
            done = True
            break
        if not done:
            out.append((None, None, last_error))
    return out


class LocalExecutor:
    """Worker-pool executor for plan DAGs.

    Parameters
    ----------
    max_workers:
        Pool width (the "executor instances" of Section V).
    backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        sidesteps the GIL for CPU-bound pure-Python stages but requires
        picklable task functions; the thread backend supports arbitrary
        closures and the failure injector.
    chunk_size:
        Process backend only: how many tasks ride in one worker
        submission.  Defaults to ``ceil(tasks / max_workers)`` per
        stage — one chunk per worker — which amortizes IPC overhead
        while keeping all workers busy.
    max_task_retries:
        Additional attempts after a task failure; 2 by default,
        matching typical Spark ``task.maxFailures`` behaviour of
        retrying transient faults.
    failure_injector:
        Optional hook raised into each task attempt, used by tests to
        simulate flaky infrastructure.  Thread backend only: the hook
        is an arbitrary (often closure-based) callable that must share
        state with the test, which cannot cross a process boundary.
    """

    def __init__(self, max_workers: int = 4, *, backend: str = "thread",
                 chunk_size: int | None = None, max_task_retries: int = 2,
                 failure_injector: FailureInjector | None = None) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if backend == "process" and failure_injector is not None:
            raise ValueError(
                "failure_injector requires the thread backend "
                "(injector hooks cannot cross process boundaries)"
            )
        self._max_workers = max_workers
        self._backend = backend
        self._chunk_size = chunk_size
        self._max_task_retries = max_task_retries
        self._failure_injector = failure_injector
        self.last_job_metrics = JobMetrics()

    @property
    def backend(self) -> str:
        """The configured backend name."""
        return self._backend

    def execute(self, node: PlanNode) -> list[list[Any]]:
        """Materialize ``node`` and return its partitions as lists."""
        self.last_job_metrics = JobMetrics()
        cache: dict[int, list[list[Any]]] = {}
        if self._backend == "process":
            # Process pools are created per job: worker processes must
            # not leak state (or leaked file descriptors) across jobs.
            with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
                return self._materialize(node, cache, pool)
        pool = _shared_thread_pool(self._max_workers)
        return self._materialize(node, cache, pool)

    def _materialize(self, node: PlanNode, cache: dict[int, list[list[Any]]],
                     pool: Executor) -> list[list[Any]]:
        if node.id in cache:
            return cache[node.id]
        parents = [self._materialize(p, cache, pool) for p in node.parents]
        result = self._run_node(node, parents, pool)
        cache[node.id] = result
        return result

    def _run_node(self, node: PlanNode, parents: list[list[list[Any]]],
                  pool: Executor) -> list[list[Any]]:
        if isinstance(node, SourceNode):
            return [list(chunk) for chunk in node.chunks]
        if isinstance(node, NarrowNode):
            parent = parents[0]
            specs = [
                _TaskSpec(node.name, i, _narrow_task,
                          (node.fn, node.indexed, i, parent[i]))
                for i in range(len(parent))
            ]
            return self._run_tasks(specs, pool)
        if isinstance(node, ShuffleNode):
            return self._run_shuffle(node, parents[0], pool)
        if isinstance(node, UnionNode):
            merged: list[list[Any]] = []
            for parent in parents:
                merged.extend(parent)
            return merged
        if isinstance(node, GatherNode):
            gathered: list[Any] = []
            for partition in parents[0]:
                gathered.extend(partition)
            specs = [_TaskSpec(node.name, 0, _gather_task, (node.fn, gathered))]
            return [self._run_tasks(specs, pool)[0]]
        raise TypeError(f"unknown plan node type {type(node).__name__}")

    def _run_shuffle(self, node: ShuffleNode, parent: list[list[Any]],
                     pool: Executor) -> list[list[Any]]:
        specs = [
            _TaskSpec(f"{node.name}.map", i, _bucketize_task,
                      (node.num_partitions, node.name, partition))
            for i, partition in enumerate(parent)
        ]
        all_buckets = self._run_tasks(specs, pool)
        output: list[list[Any]] = []
        for index in range(node.num_partitions):
            merged: list[Any] = []
            for buckets in all_buckets:
                merged.extend(buckets[index])
            output.append(merged)
        return output

    # -- scheduling ----------------------------------------------------------

    def _run_tasks(self, specs: list[_TaskSpec],
                   pool: Executor) -> list[list[Any]]:
        """Run one stage's tasks, returning results in partition order."""
        if not specs:
            return []
        if self._backend == "process":
            return self._run_tasks_chunked(specs, pool)
        futures = [
            pool.submit(self._run_task, spec.node_name, spec.partition,
                        spec.fn, spec.args)
            for spec in specs
        ]
        return [f.result() for f in futures]

    def _run_tasks_chunked(self, specs: list[_TaskSpec],
                           pool: Executor) -> list[list[Any]]:
        """Process backend: ship tasks in chunks, one future per chunk."""
        chunk_size = self._chunk_size
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(specs) / self._max_workers))
        payloads = [
            [(s.node_name, s.partition, s.fn, s.args) for s in chunk]
            for chunk in (specs[i:i + chunk_size]
                          for i in range(0, len(specs), chunk_size))
        ]
        futures = [
            pool.submit(_run_task_chunk, payload, self._max_task_retries)
            for payload in payloads
        ]
        results: list[list[Any]] = []
        failure: tuple[_TaskSpec, str] | None = None
        for payload_index, future in enumerate(futures):
            try:
                chunk_results = future.result()
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                name = payloads[payload_index][0][0]
                raise TaskFailedError(
                    f"tasks of node {name!r} cannot be shipped to the "
                    "process backend (functions and their captured state "
                    "must be picklable — use module-level functions, or "
                    "the thread backend for closures)"
                ) from exc
            for task_index, (metrics, result, error) in enumerate(
                chunk_results
            ):
                spec = payloads[payload_index][task_index]
                if error is not None:
                    failure = failure or (
                        _TaskSpec(spec[0], spec[1], spec[2], spec[3]), error
                    )
                    continue
                assert metrics is not None and result is not None
                self.last_job_metrics.tasks.append(metrics)
                results.append(result)
        if failure is not None:
            spec, error = failure
            raise TaskFailedError(
                f"task {spec.node_name!r} partition {spec.partition} failed "
                f"after {self._max_task_retries + 1} attempts: {error}"
            )
        return results

    def _run_task(self, name: str, partition: int,
                  fn: Callable[..., list[Any]],
                  args: tuple[Any, ...]) -> list[Any]:
        last_error: BaseException | None = None
        for attempt in range(1, self._max_task_retries + 2):
            started = time.perf_counter()
            try:
                if self._failure_injector is not None:
                    self._failure_injector(name, partition, attempt)
                result = fn(*args)
            except Exception as exc:  # noqa: BLE001 - retry any task error
                last_error = exc
                continue
            elapsed = time.perf_counter() - started
            self.last_job_metrics.tasks.append(
                TaskMetrics(node_name=name, partition=partition,
                            rows_out=len(result), seconds=elapsed,
                            attempts=attempt)
            )
            return result
        raise TaskFailedError(
            f"task {name!r} partition {partition} failed after "
            f"{self._max_task_retries + 1} attempts"
        ) from last_error

"""Task execution for the miniature dataset engine.

The :class:`LocalExecutor` materializes a plan DAG on a worker pool,
one task per partition, with:

* stage-at-a-time scheduling (shuffles fully materialize their input),
* two backends: ``"thread"`` (default; shares the interpreter, right
  for IO-ish stages and for closure-based test hooks) and
  ``"process"`` (a ``ProcessPoolExecutor``, so CPU-bound pure-Python
  stages actually scale with cores instead of serializing on the GIL),
* **chunked task batching** on the process backend: tasks are shipped
  to workers in chunks (one chunk per worker by default) so the
  per-task IPC/pickling overhead is amortized across a whole batch,
* **fault-tolerant task attempts** on both backends: a pluggable
  :class:`~repro.engine.retry.RetryPolicy` (bounded retries with
  deterministic exponential backoff and optional per-attempt
  timeouts) plus a seedable executor-level
  :class:`~repro.engine.chaos.ChaosInjector` that can crash, delay,
  duplicate, or drop task attempts at named plan nodes,
* per-node task metrics (rows in/out, cumulative busy time, attempts,
  failed attempts) mirroring the kind of accounting the paper reports
  for the production Spark job (Section V: "core CDI computation time
  is around 500 seconds"),
* optional **run tracing**: attach a
  :class:`~repro.engine.trace.RunTrace` and every stage becomes a
  node span while every task attempt — retries, backoffs, timeouts,
  chaos injections, speculative duplicates — becomes a
  :class:`~repro.engine.trace.TaskAttemptRecord`; on the process
  backend the records ride home with the task result tuples, so no
  shared state crosses the worker boundary.

Both backends produce identical partition contents for deterministic
task functions: tasks are collected in submission (partition) order
and shuffles use a process-stable key hash
(:func:`repro.engine.plan.stable_hash`).

The process backend requires every task function to be picklable —
module-level functions or instances of module-level classes.  The
:mod:`repro.engine.dataset` API builds its transformations out of
picklable adapter objects, so any dataset pipeline whose user
functions are themselves picklable runs on either backend unchanged.
Retry policies and chaos injectors are frozen dataclasses, so the
whole fault-tolerance configuration ships to worker processes too;
only the legacy ``failure_injector`` hook (an arbitrary closure)
remains thread-only.
"""

from __future__ import annotations

import math
import pickle
import threading
import time
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.chaos import ChaosInjector, DroppedResult, InjectedFault
from repro.engine.plan import (
    GatherNode,
    NarrowNode,
    PlanNode,
    ShuffleNode,
    SourceNode,
    UnionNode,
    stable_hash,
)
from repro.engine.retry import RetryPolicy
from repro.engine.trace import RunTrace, TaskAttemptRecord, stamp_job

#: Hook signature: ``(node_name, partition_index, attempt)``; raise to
#: make that task attempt fail.
FailureInjector = Callable[[str, int, int], None]

#: Supported executor backends.
BACKENDS = ("thread", "process")


class TaskTimeoutError(RuntimeError):
    """One task attempt exceeded the policy's per-attempt timeout."""


class TaskFailedError(RuntimeError):
    """A task exhausted its retries.

    Carries structured context so failures survive the process
    boundary: the offending plan-node name and partition, the attempt
    count, and the original cause's type, message, and formatted
    traceback (``__cause__`` itself cannot be pickled across worker
    processes in general, so the traceback text is first-class).
    """

    def __init__(self, message: str, *, node_name: str | None = None,
                 partition: int | None = None, attempts: int | None = None,
                 cause_type: str | None = None,
                 cause_message: str | None = None,
                 cause_traceback: str | None = None) -> None:
        super().__init__(message)
        self.node_name = node_name
        self.partition = partition
        self.attempts = attempts
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.cause_traceback = cause_traceback


# Thread pools are shared process-wide, like long-lived Spark
# executors: spawning threads per job costs more than an entire small
# job.  The pool only ever grows (to the largest max_workers any
# executor asked for); a replaced pool is not shut down — its idle
# threads drain naturally at interpreter exit.
_thread_pool_lock = threading.Lock()
_thread_pool: ThreadPoolExecutor | None = None
_thread_pool_workers = 0


def _shared_thread_pool(max_workers: int) -> ThreadPoolExecutor:
    global _thread_pool, _thread_pool_workers
    with _thread_pool_lock:
        if _thread_pool is None or _thread_pool_workers < max_workers:
            _thread_pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-engine"
            )
            _thread_pool_workers = max_workers
        return _thread_pool


@dataclass(frozen=True, slots=True)
class TaskMetrics:
    """Accounting for one successful task.

    ``seconds`` is the task's *cumulative busy time*: the summed body
    runtime plus injected chaos delay across **all** attempts, failed
    ones included.  (It excludes backoff sleeps — the worker is idle —
    and chaos-``duplicate`` speculative executions, which are timed as
    their own :class:`~repro.engine.trace.TaskAttemptRecord`s.)  A
    retried task therefore reports every second it actually burned,
    not just its final attempt.
    """

    node_name: str
    partition: int
    rows_out: int
    seconds: float
    attempts: int


@dataclass(frozen=True, slots=True)
class TaskFailure:
    """Accounting for one *failed* task attempt.

    ``kind`` classifies the failure: ``"error"`` (the task body
    raised), ``"timeout"`` (per-attempt timeout), ``"injected"``
    (chaos crash), or ``"dropped"`` (chaos result loss).  ``fatal``
    marks the attempt that exhausted the retry budget.
    """

    node_name: str
    partition: int
    attempt: int
    kind: str
    error: str
    fatal: bool = False


@dataclass(slots=True)
class _FinalError:
    """Final-failure details of a retry-exhausted task.

    The string fields are always portable; ``exception`` holds the
    live original exception in-process (so the thread backend can
    chain it as ``__cause__``) and is stripped before crossing a
    process boundary, where arbitrary exceptions may not pickle.
    """

    type_name: str
    message: str
    traceback_text: str
    exception: BaseException | None = None


@dataclass
class JobMetrics:
    """Aggregated accounting for one ``execute`` call.

    ``job`` is the executor-local sequence number of the ``execute``
    call that produced these metrics; attempt records in a
    :class:`~repro.engine.trace.RunTrace` carry the same id, which is
    how a trace spanning many engine actions (e.g. one per checkpoint
    shard) keeps re-executions of identically named plan nodes apart.
    """

    tasks: list[TaskMetrics] = field(default_factory=list)
    failures: list[TaskFailure] = field(default_factory=list)
    job: int = 0

    @property
    def task_count(self) -> int:
        """Total number of successful tasks."""
        return len(self.tasks)

    @property
    def total_rows(self) -> int:
        """Total rows produced across all tasks."""
        return sum(t.rows_out for t in self.tasks)

    @property
    def total_seconds(self) -> float:
        """Sum of cumulative task busy times (CPU-seconds analogue)."""
        return sum(t.seconds for t in self.tasks)

    @property
    def retried_tasks(self) -> int:
        """Successful tasks that needed more than one attempt."""
        return sum(1 for t in self.tasks if t.attempts > 1)

    @property
    def retry_attempts(self) -> int:
        """Total failed attempts that were given another try."""
        return sum(1 for f in self.failures if not f.fatal)

    @property
    def failed_tasks(self) -> int:
        """Tasks that exhausted their retry budget (job-fatal)."""
        return sum(1 for f in self.failures if f.fatal)

    @property
    def timed_out_tasks(self) -> int:
        """Distinct tasks with at least one timed-out attempt."""
        return len({
            (f.node_name, f.partition)
            for f in self.failures if f.kind == "timeout"
        })

    def by_node(self) -> dict[str, float]:
        """Wall time aggregated per plan-node name."""
        totals: dict[str, float] = {}
        for task in self.tasks:
            totals[task.node_name] = totals.get(task.node_name, 0.0) + task.seconds
        return totals


@dataclass(frozen=True, slots=True)
class _TaskSpec:
    """One schedulable unit: run ``fn(*args)`` for a node partition."""

    node_name: str
    partition: int
    fn: Callable[..., list[Any]]
    args: tuple[Any, ...]


# -- module-level task bodies (picklable for the process backend) -----------


def _narrow_task(fn: Callable[..., Any], indexed: bool, index: int,
                 part: Sequence[Any]) -> list[Any]:
    """Materialize one narrow-node partition."""
    if indexed:
        return list(fn(index, iter(part)))
    return list(fn(iter(part)))


def _bucketize_task(num_partitions: int, name: str,
                    partition: Sequence[Any]) -> list[list[Any]]:
    """Map side of a shuffle: route pairs into output buckets."""
    buckets: list[list[Any]] = [[] for _ in range(num_partitions)]
    for element in partition:
        try:
            key, _ = element
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"shuffle {name!r} requires (key, value) pairs, "
                f"got {element!r}"
            ) from exc
        buckets[stable_hash(key) % num_partitions].append(element)
    return buckets


def _gather_task(fn: Callable[[list[Any]], Any],
                 rows: list[Any]) -> list[Any]:
    """Run a gather node's post-processing function."""
    return list(fn(rows))


# -- the shared per-task attempt loop ----------------------------------------


def _call_with_timeout(fn: Callable[..., list[Any]], args: tuple[Any, ...],
                       timeout: float | None) -> list[Any]:
    """Run ``fn(*args)``, raising :class:`TaskTimeoutError` on overrun.

    With a timeout, the body runs on a dedicated daemon thread that is
    abandoned on overrun (Python cannot preempt arbitrary code); the
    executor then treats the attempt as failed and retries — the same
    semantics as a Spark driver giving up on a straggler task.
    """
    if timeout is None:
        return fn(*args)
    box: dict[str, Any] = {}

    def runner() -> None:
        try:
            box["result"] = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    worker = threading.Thread(
        target=runner, daemon=True, name="repro-task-attempt"
    )
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise TaskTimeoutError(
            f"attempt exceeded the {timeout}s per-task timeout"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


def _failure_kind(exc: BaseException) -> str:
    if isinstance(exc, TaskTimeoutError):
        return "timeout"
    if isinstance(exc, InjectedFault):
        return "injected"
    if isinstance(exc, DroppedResult):
        return "dropped"
    return "error"


def _run_speculative(
    name: str, partition: int, attempt: int, fn: Callable[..., list[Any]],
    args: tuple[Any, ...], policy: RetryPolicy,
    records: list[TaskAttemptRecord],
) -> None:
    """Run a chaos-``duplicate`` speculative execution.

    The run is timed as its *own* attempt record (sharing the kept
    attempt's number, flagged ``speculative``) so its runtime never
    double-counts into the kept attempt's ``run_seconds`` — and
    therefore never inflates :attr:`TaskMetrics.seconds`.  An exception
    propagates unchanged: a failing task body fails its attempt exactly
    as it did before speculation was instrumented.
    """
    started = time.monotonic()
    try:
        _call_with_timeout(fn, args, policy.timeout)
    except Exception as exc:
        ended = time.monotonic()
        records.append(TaskAttemptRecord(
            node_name=name, partition=partition, attempt=attempt,
            speculative=True, started=started, ended=ended,
            run_seconds=ended - started, status=_failure_kind(exc),
            error=f"{type(exc).__name__}: {exc}", chaos_kind="duplicate",
        ))
        raise
    ended = time.monotonic()
    records.append(TaskAttemptRecord(
        node_name=name, partition=partition, attempt=attempt,
        speculative=True, started=started, ended=ended,
        run_seconds=ended - started, status="ok", chaos_kind="duplicate",
    ))


def _run_attempts(
    name: str, partition: int, fn: Callable[..., list[Any]],
    args: tuple[Any, ...], policy: RetryPolicy,
    chaos: ChaosInjector | None,
    failure_injector: FailureInjector | None = None,
    submitted: float | None = None,
) -> tuple[TaskMetrics | None, list[Any] | None, list[TaskFailure],
           list[TaskAttemptRecord], _FinalError | None]:
    """Run one task to success or retry exhaustion.

    The single attempt loop used by **both** backends: chaos plan →
    injected delay → (injected crash | task body under timeout) →
    injected result loss, with backoff sleeps between attempts.
    Returns ``(metrics, result, failed_attempts, attempt_records,
    final_error)`` where exactly one of ``metrics``/``final_error`` is
    set; errors travel as portable ``(type, message, traceback)``
    strings so un-picklable user exceptions cannot poison a process
    result channel, and the attempt records ride the same tuple so
    process workers need no shared trace state.

    ``submitted`` is the driver-side ``time.monotonic()`` at stage
    submission; the gap to attempt 1's start is the task's queue wait.
    The returned metrics' ``seconds`` is cumulative across attempts
    (body runtime + injected delay; backoff and speculative duplicate
    runs excluded), so retried tasks no longer under-report.
    """
    failures: list[TaskFailure] = []
    records: list[TaskAttemptRecord] = []
    last_exc: BaseException | None = None
    busy_seconds = 0.0
    for attempt in range(1, policy.max_attempts + 1):
        started = time.monotonic()
        queue_seconds = (
            max(0.0, started - submitted)
            if submitted is not None and attempt == 1 else 0.0
        )
        plan = None
        chaos_delay = 0.0
        run_seconds = 0.0
        try:
            plan = (chaos.plan(name, partition, attempt)
                    if chaos is not None else None)
            if failure_injector is not None:
                failure_injector(name, partition, attempt)
            if plan is not None:
                if plan.delay > 0.0:
                    time.sleep(plan.delay)
                    chaos_delay = plan.delay
                if plan.kind == "crash":
                    raise InjectedFault(
                        f"injected crash at {name!r} partition {partition} "
                        f"attempt {attempt}"
                    )
                if plan.kind == "duplicate":
                    # A speculative duplicate runs first; only the
                    # second execution's result is kept.  Pure tasks
                    # make this a no-op by definition.
                    _run_speculative(
                        name, partition, attempt, fn, args, policy, records
                    )
            run_started = time.monotonic()
            try:
                result = _call_with_timeout(fn, args, policy.timeout)
            finally:
                run_seconds = time.monotonic() - run_started
            if plan is not None and plan.kind == "drop":
                raise DroppedResult(
                    f"injected result loss at {name!r} partition "
                    f"{partition} attempt {attempt}"
                )
        except Exception as exc:  # noqa: BLE001 - retry any task error
            last_exc = exc
            fatal = not policy.should_retry(attempt)
            kind = _failure_kind(exc)
            failures.append(TaskFailure(
                node_name=name, partition=partition, attempt=attempt,
                kind=kind, error=f"{type(exc).__name__}: {exc}", fatal=fatal,
            ))
            ended = time.monotonic()
            backoff = (0.0 if fatal
                       else policy.delay(attempt, key=(name, partition)))
            records.append(TaskAttemptRecord(
                node_name=name, partition=partition, attempt=attempt,
                started=started, ended=ended, queue_seconds=queue_seconds,
                run_seconds=run_seconds, backoff_seconds=backoff,
                chaos_delay_seconds=chaos_delay, status=kind,
                error=f"{type(exc).__name__}: {exc}",
                chaos_kind=plan.kind if plan is not None else None,
            ))
            busy_seconds += run_seconds + chaos_delay
            if fatal:
                break
            if backoff > 0.0:
                time.sleep(backoff)
            continue
        ended = time.monotonic()
        records.append(TaskAttemptRecord(
            node_name=name, partition=partition, attempt=attempt,
            started=started, ended=ended, queue_seconds=queue_seconds,
            run_seconds=run_seconds, chaos_delay_seconds=chaos_delay,
            status="ok",
            chaos_kind=plan.kind if plan is not None else None,
        ))
        busy_seconds += run_seconds + chaos_delay
        metrics = TaskMetrics(
            node_name=name, partition=partition, rows_out=len(result),
            seconds=busy_seconds, attempts=attempt,
        )
        return metrics, result, failures, records, None
    assert last_exc is not None
    final = _FinalError(
        type_name=type(last_exc).__name__,
        message=str(last_exc),
        traceback_text="".join(traceback.format_exception(last_exc)),
        exception=last_exc,
    )
    return None, None, failures, records, final


def _run_task_chunk(
    specs: Sequence[tuple[str, int, Callable[..., list[Any]], tuple[Any, ...]]],
    policy: RetryPolicy,
    chaos: ChaosInjector | None,
    submitted: float | None = None,
) -> list[tuple[TaskMetrics | None, list[Any] | None, list[TaskFailure],
                list[TaskAttemptRecord], _FinalError | None]]:
    """Worker-side body of one chunk: run each task with retries.

    Returns one ``(metrics, result, failures, records, error)`` tuple
    per task, in input order — the attempt records travel home with
    the results, so tracing needs no cross-process shared state (on
    Linux ``time.monotonic`` is system-wide, so worker-side stamps
    line up with driver-side spans).  Live exception objects are
    stripped from final errors so un-picklable user exceptions cannot
    poison the result channel back to the parent; their type, message,
    and formatted traceback still travel as strings.
    """
    out = []
    for name, partition, fn, args in specs:
        metrics, result, failures, records, error = _run_attempts(
            name, partition, fn, args, policy, chaos, submitted=submitted
        )
        if error is not None:
            error.exception = None
        out.append((metrics, result, failures, records, error))
    return out


def _task_failed_error(name: str, partition: int, attempts: int,
                       error: _FinalError) -> TaskFailedError:
    return TaskFailedError(
        f"task {name!r} partition {partition} failed after "
        f"{attempts} attempts: {error.type_name}: {error.message}\n"
        f"-- original traceback --\n{error.traceback_text}",
        node_name=name, partition=partition, attempts=attempts,
        cause_type=error.type_name, cause_message=error.message,
        cause_traceback=error.traceback_text,
    )


class LocalExecutor:
    """Worker-pool executor for plan DAGs.

    Parameters
    ----------
    max_workers:
        Pool width (the "executor instances" of Section V).
    backend:
        ``"thread"`` (default) or ``"process"``.  The process backend
        sidesteps the GIL for CPU-bound pure-Python stages but requires
        picklable task functions; the thread backend supports arbitrary
        closures and the legacy failure injector.
    chunk_size:
        Process backend only: how many tasks ride in one worker
        submission.  Defaults to ``ceil(tasks / max_workers)`` per
        stage — one chunk per worker — which amortizes IPC overhead
        while keeping all workers busy.
    max_task_retries:
        Shorthand for ``retry_policy=RetryPolicy(max_retries=N)``; 2 by
        default, matching typical Spark ``task.maxFailures`` behaviour
        of retrying transient faults.  Ignored when ``retry_policy`` is
        given.
    retry_policy:
        Full fault-tolerance knob: retries, exponential backoff with
        deterministic jitter, per-attempt timeouts.  Works on both
        backends (the policy is a frozen, picklable dataclass).
    chaos:
        Optional :class:`~repro.engine.chaos.ChaosInjector` evaluated
        around every task attempt on **both** backends — the
        deterministic, seedable fault source of the chaos test suite.
    failure_injector:
        Legacy hook raised into each task attempt.  Thread backend
        only: the hook is an arbitrary (often closure-based) callable
        that must share state with the test, which cannot cross a
        process boundary.  Prefer ``chaos`` for new code.
    trace:
        Optional :class:`~repro.engine.trace.RunTrace` that collects a
        node span per stage and per-attempt records for every task on
        either backend.  Also settable afterwards via the mutable
        ``trace`` attribute (see
        :func:`~repro.engine.trace.executor_tracing`).
    """

    def __init__(self, max_workers: int = 4, *, backend: str = "thread",
                 chunk_size: int | None = None, max_task_retries: int = 2,
                 retry_policy: RetryPolicy | None = None,
                 chaos: ChaosInjector | None = None,
                 failure_injector: FailureInjector | None = None,
                 trace: RunTrace | None = None) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if backend == "process" and failure_injector is not None:
            raise ValueError(
                "failure_injector requires the thread backend "
                "(injector hooks cannot cross process boundaries); "
                "use chaos=ChaosInjector(...) instead"
            )
        self._max_workers = max_workers
        self._backend = backend
        self._chunk_size = chunk_size
        self._retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(max_retries=max_task_retries)
        )
        self._chaos = chaos
        self._failure_injector = failure_injector
        self.trace = trace
        self._job_seq = 0
        self.last_job_metrics = JobMetrics()

    @property
    def backend(self) -> str:
        """The configured backend name."""
        return self._backend

    @property
    def retry_policy(self) -> RetryPolicy:
        """The active retry policy."""
        return self._retry_policy

    @property
    def chaos(self) -> ChaosInjector | None:
        """The active chaos injector, if any."""
        return self._chaos

    def execute(self, node: PlanNode) -> list[list[Any]]:
        """Materialize ``node`` and return its partitions as lists."""
        self._job_seq += 1
        self.last_job_metrics = JobMetrics(job=self._job_seq)
        cache: dict[int, list[list[Any]]] = {}
        if self._backend == "process":
            # Process pools are created per job: worker processes must
            # not leak state (or leaked file descriptors) across jobs.
            with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
                return self._materialize(node, cache, pool)
        pool = _shared_thread_pool(self._max_workers)
        return self._materialize(node, cache, pool)

    def _materialize(self, node: PlanNode, cache: dict[int, list[list[Any]]],
                     pool: Executor) -> list[list[Any]]:
        if node.id in cache:
            return cache[node.id]
        parents = [self._materialize(p, cache, pool) for p in node.parents]
        result = self._run_node(node, parents, pool)
        cache[node.id] = result
        return result

    def _run_node(self, node: PlanNode, parents: list[list[list[Any]]],
                  pool: Executor) -> list[list[Any]]:
        if isinstance(node, SourceNode):
            return [list(chunk) for chunk in node.chunks]
        if isinstance(node, NarrowNode):
            parent = parents[0]
            specs = [
                _TaskSpec(node.name, i, _narrow_task,
                          (node.fn, node.indexed, i, parent[i]))
                for i in range(len(parent))
            ]
            return self._run_tasks(specs, pool)
        if isinstance(node, ShuffleNode):
            return self._run_shuffle(node, parents[0], pool)
        if isinstance(node, UnionNode):
            merged: list[list[Any]] = []
            for parent in parents:
                merged.extend(parent)
            return merged
        if isinstance(node, GatherNode):
            gathered: list[Any] = []
            for partition in parents[0]:
                gathered.extend(partition)
            specs = [_TaskSpec(node.name, 0, _gather_task, (node.fn, gathered))]
            return [self._run_tasks(specs, pool)[0]]
        raise TypeError(f"unknown plan node type {type(node).__name__}")

    def _run_shuffle(self, node: ShuffleNode, parent: list[list[Any]],
                     pool: Executor) -> list[list[Any]]:
        specs = [
            _TaskSpec(f"{node.name}.map", i, _bucketize_task,
                      (node.num_partitions, node.name, partition))
            for i, partition in enumerate(parent)
        ]
        all_buckets = self._run_tasks(specs, pool)
        output: list[list[Any]] = []
        for index in range(node.num_partitions):
            merged: list[Any] = []
            for buckets in all_buckets:
                merged.extend(buckets[index])
            output.append(merged)
        return output

    # -- scheduling ----------------------------------------------------------

    def _run_tasks(self, specs: list[_TaskSpec],
                   pool: Executor) -> list[list[Any]]:
        """Run one stage's tasks, returning results in partition order.

        When a trace is attached, the whole stage runs inside one
        ``kind="node"`` span (stamped with the job id so repeated
        executions of same-named nodes stay distinguishable) and the
        submission timestamp rides along so attempt records can report
        their queue wait.
        """
        if not specs:
            return []
        trace = self.trace
        span = None
        if trace is not None:
            span = trace.begin_span(
                specs[0].node_name, "node", job=self.last_job_metrics.job,
                tasks=len(specs), backend=self._backend,
            )
        try:
            if self._backend == "process":
                results = self._run_tasks_chunked(specs, pool)
            else:
                submitted = time.monotonic()
                futures = [
                    pool.submit(self._run_task, spec.node_name,
                                spec.partition, spec.fn, spec.args, submitted)
                    for spec in specs
                ]
                results = [f.result() for f in futures]
            if span is not None:
                span.attributes["rows_out"] = sum(len(r) for r in results)
            return results
        finally:
            if span is not None:
                trace.end_span(span)

    def _run_tasks_chunked(self, specs: list[_TaskSpec],
                           pool: Executor) -> list[list[Any]]:
        """Process backend: ship tasks in chunks, one future per chunk."""
        chunk_size = self._chunk_size
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(specs) / self._max_workers))
        payloads = [
            [(s.node_name, s.partition, s.fn, s.args) for s in chunk]
            for chunk in (specs[i:i + chunk_size]
                          for i in range(0, len(specs), chunk_size))
        ]
        submitted = time.monotonic()
        futures = [
            pool.submit(_run_task_chunk, payload, self._retry_policy,
                        self._chaos, submitted)
            for payload in payloads
        ]
        results: list[list[Any]] = []
        failure: tuple[str, int, _FinalError] | None = None
        for payload_index, future in enumerate(futures):
            try:
                chunk_results = future.result()
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                name = payloads[payload_index][0][0]
                raise TaskFailedError(
                    f"tasks of node {name!r} cannot be shipped to the "
                    "process backend (functions and their captured state "
                    "must be picklable — use module-level functions, or "
                    "the thread backend for closures)",
                    node_name=name,
                ) from exc
            for task_index, (
                metrics, result, failures, records, error
            ) in enumerate(chunk_results):
                if self.trace is not None:
                    self.trace.record_attempts(
                        stamp_job(records, self.last_job_metrics.job)
                    )
                self.last_job_metrics.failures.extend(failures)
                spec = payloads[payload_index][task_index]
                if error is not None:
                    failure = failure or (spec[0], spec[1], error)
                    continue
                assert metrics is not None and result is not None
                self.last_job_metrics.tasks.append(metrics)
                results.append(result)
        if failure is not None:
            name, partition, error = failure
            raise _task_failed_error(
                name, partition, self._retry_policy.max_attempts, error
            )
        return results

    def _run_task(self, name: str, partition: int,
                  fn: Callable[..., list[Any]],
                  args: tuple[Any, ...],
                  submitted: float | None = None) -> list[Any]:
        metrics, result, failures, records, error = _run_attempts(
            name, partition, fn, args, self._retry_policy, self._chaos,
            self._failure_injector, submitted=submitted,
        )
        if self.trace is not None:
            self.trace.record_attempts(
                stamp_job(records, self.last_job_metrics.job)
            )
        self.last_job_metrics.failures.extend(failures)
        if error is not None:
            raise _task_failed_error(
                name, partition, self._retry_policy.max_attempts, error
            ) from error.exception
        assert metrics is not None and result is not None
        self.last_job_metrics.tasks.append(metrics)
        return result

"""Task execution for the miniature dataset engine.

The :class:`LocalExecutor` materializes a plan DAG on a thread pool,
one task per partition, with:

* stage-at-a-time scheduling (shuffles fully materialize their input),
* bounded task retries with a pluggable failure injector (used by the
  failure-injection tests),
* per-node task metrics (rows in/out, wall time) mirroring the kind of
  accounting the paper reports for the production Spark job
  (Section V: "core CDI computation time is around 500 seconds").
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.plan import (
    GatherNode,
    NarrowNode,
    PlanNode,
    ShuffleNode,
    SourceNode,
    UnionNode,
)

#: Hook signature: ``(node_name, partition_index, attempt)``; raise to
#: make that task attempt fail.
FailureInjector = Callable[[str, int, int], None]


class TaskFailedError(RuntimeError):
    """A task exhausted its retries."""


@dataclass(frozen=True, slots=True)
class TaskMetrics:
    """Accounting for one successful task attempt."""

    node_name: str
    partition: int
    rows_out: int
    seconds: float
    attempts: int


@dataclass
class JobMetrics:
    """Aggregated accounting for one ``execute`` call."""

    tasks: list[TaskMetrics] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        """Total number of successful tasks."""
        return len(self.tasks)

    @property
    def total_rows(self) -> int:
        """Total rows produced across all tasks."""
        return sum(t.rows_out for t in self.tasks)

    @property
    def total_seconds(self) -> float:
        """Sum of task wall times (CPU-seconds analogue)."""
        return sum(t.seconds for t in self.tasks)

    @property
    def retried_tasks(self) -> int:
        """Tasks that needed more than one attempt."""
        return sum(1 for t in self.tasks if t.attempts > 1)

    def by_node(self) -> dict[str, float]:
        """Wall time aggregated per plan-node name."""
        totals: dict[str, float] = {}
        for task in self.tasks:
            totals[task.node_name] = totals.get(task.node_name, 0.0) + task.seconds
        return totals


class LocalExecutor:
    """Thread-pool executor for plan DAGs.

    Parameters
    ----------
    max_workers:
        Thread-pool width (the "executor instances" of Section V).
    max_task_retries:
        Additional attempts after a task failure; 2 by default,
        matching typical Spark ``task.maxFailures`` behaviour of
        retrying transient faults.
    failure_injector:
        Optional hook raised into each task attempt, used by tests to
        simulate flaky infrastructure.
    """

    def __init__(self, max_workers: int = 4, *, max_task_retries: int = 2,
                 failure_injector: FailureInjector | None = None) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        self._max_workers = max_workers
        self._max_task_retries = max_task_retries
        self._failure_injector = failure_injector
        self.last_job_metrics = JobMetrics()

    def execute(self, node: PlanNode) -> list[list[Any]]:
        """Materialize ``node`` and return its partitions as lists."""
        self.last_job_metrics = JobMetrics()
        cache: dict[int, list[list[Any]]] = {}
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            return self._materialize(node, cache, pool)

    def _materialize(self, node: PlanNode, cache: dict[int, list[list[Any]]],
                     pool: ThreadPoolExecutor) -> list[list[Any]]:
        if node.id in cache:
            return cache[node.id]
        parents = [self._materialize(p, cache, pool) for p in node.parents]
        result = self._run_node(node, parents, pool)
        cache[node.id] = result
        return result

    def _run_node(self, node: PlanNode, parents: list[list[list[Any]]],
                  pool: ThreadPoolExecutor) -> list[list[Any]]:
        if isinstance(node, SourceNode):
            return [list(chunk) for chunk in node.chunks]
        if isinstance(node, NarrowNode):
            parent = parents[0]

            def narrow_work(index: int, part: list[Any]) -> list[Any]:
                if node.indexed:
                    return list(node.fn(index, iter(part)))
                return list(node.fn(iter(part)))

            tasks = [
                pool.submit(self._run_task, node.name, i,
                            lambda i=i, part=parent[i]: narrow_work(i, part))
                for i in range(len(parent))
            ]
            return [t.result() for t in tasks]
        if isinstance(node, ShuffleNode):
            return self._run_shuffle(node, parents[0], pool)
        if isinstance(node, UnionNode):
            merged: list[list[Any]] = []
            for parent in parents:
                merged.extend(parent)
            return merged
        if isinstance(node, GatherNode):
            gathered: list[Any] = []
            for partition in parents[0]:
                gathered.extend(partition)
            return [self._run_task(node.name, 0,
                                   lambda: list(node.fn(gathered)))]
        raise TypeError(f"unknown plan node type {type(node).__name__}")

    def _run_shuffle(self, node: ShuffleNode, parent: list[list[Any]],
                     pool: ThreadPoolExecutor) -> list[list[Any]]:
        def bucketize(partition: list[Any]) -> list[list[Any]]:
            buckets: list[list[Any]] = [[] for _ in range(node.num_partitions)]
            for element in partition:
                try:
                    key, _ = element
                except (TypeError, ValueError) as exc:
                    raise TypeError(
                        f"shuffle {node.name!r} requires (key, value) pairs, "
                        f"got {element!r}"
                    ) from exc
                buckets[node.partition_of(key)].append(element)
            return buckets

        tasks = [
            pool.submit(self._run_task, f"{node.name}.map", i,
                        lambda part=partition: bucketize(part))
            for i, partition in enumerate(parent)
        ]
        all_buckets = [t.result() for t in tasks]
        output: list[list[Any]] = []
        for index in range(node.num_partitions):
            merged: list[Any] = []
            for buckets in all_buckets:
                merged.extend(buckets[index])
            output.append(merged)
        return output

    def _run_task(self, name: str, partition: int,
                  work: Callable[[], list[Any]]) -> list[Any]:
        last_error: BaseException | None = None
        for attempt in range(1, self._max_task_retries + 2):
            started = time.perf_counter()
            try:
                if self._failure_injector is not None:
                    self._failure_injector(name, partition, attempt)
                result = work()
            except Exception as exc:  # noqa: BLE001 - retry any task error
                last_error = exc
                continue
            elapsed = time.perf_counter() - started
            self.last_job_metrics.tasks.append(
                TaskMetrics(node_name=name, partition=partition,
                            rows_out=len(result), seconds=elapsed,
                            attempts=attempt)
            )
            return result
        raise TaskFailedError(
            f"task {name!r} partition {partition} failed after "
            f"{self._max_task_retries + 1} attempts"
        ) from last_error

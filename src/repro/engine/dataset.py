"""User-facing dataset API of the miniature engine.

Mirrors the subset of the Spark RDD API the paper's daily CDI job
needs: lazy transformations over partitioned collections, key/value
wide operations, and materializing actions.

Every transformation is expressed as a small module-level adapter
object (``_MapFn``, ``_GroupValues``, ...) rather than an inline
closure, so a plan is picklable end-to-end whenever the user-supplied
functions are — the requirement for running on the
:class:`~repro.engine.executor.LocalExecutor` process backend.

Example::

    ctx = EngineContext(parallelism=4)
    events = ctx.parallelize(rows)
    per_vm = (
        events.key_by(lambda row: row["vm"])
              .group_by_key()
              .map_values(compute_report)
              .collect()
    )
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence, TypeVar

from repro.engine.chaos import ChaosInjector
from repro.engine.executor import JobMetrics, LocalExecutor
from repro.engine.retry import RetryPolicy
from repro.engine.trace import RunTrace
from repro.engine.plan import (
    GatherNode,
    NarrowNode,
    PlanNode,
    ShuffleNode,
    SourceNode,
    UnionNode,
)

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def _chunk(data: Sequence[Any], parts: int) -> list[list[Any]]:
    """Split ``data`` into ``parts`` balanced contiguous chunks."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    length = len(data)
    chunks: list[list[Any]] = []
    base, extra = divmod(length, parts)
    cursor = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(list(data[cursor:cursor + size]))
        cursor += size
    return chunks


# -- picklable transformation adapters ---------------------------------------


@dataclass(frozen=True)
class _MapFn:
    fn: Callable[[Any], Any]

    def __call__(self, part: Iterator[Any]) -> Iterable[Any]:
        fn = self.fn
        return (fn(x) for x in part)


@dataclass(frozen=True)
class _FilterFn:
    predicate: Callable[[Any], bool]

    def __call__(self, part: Iterator[Any]) -> Iterable[Any]:
        predicate = self.predicate
        return (x for x in part if predicate(x))


@dataclass(frozen=True)
class _FlatMapFn:
    fn: Callable[[Any], Iterable[Any]]

    def __call__(self, part: Iterator[Any]) -> Iterable[Any]:
        fn = self.fn
        return itertools.chain.from_iterable(fn(x) for x in part)


@dataclass(frozen=True)
class _KeyByFn:
    key_fn: Callable[[Any], Any]

    def __call__(self, part: Iterator[Any]) -> Iterable[tuple[Any, Any]]:
        key_fn = self.key_fn
        return ((key_fn(x), x) for x in part)


@dataclass(frozen=True)
class _MapValuesFn:
    fn: Callable[[Any], Any]

    def __call__(self, part: Iterator[tuple[Any, Any]]
                 ) -> Iterable[tuple[Any, Any]]:
        fn = self.fn
        return ((k, fn(v)) for k, v in part)


class _GroupValues:
    def __call__(self, part: Iterator[tuple[Any, Any]]
                 ) -> Iterable[tuple[Any, list[Any]]]:
        groups: dict[Any, list[Any]] = {}
        for key, value in part:
            groups.setdefault(key, []).append(value)
        return groups.items()


@dataclass(frozen=True)
class _ReduceCombine:
    fn: Callable[[Any, Any], Any]

    def __call__(self, part: Iterator[tuple[Any, Any]]
                 ) -> Iterable[tuple[Any, Any]]:
        fn = self.fn
        acc: dict[Any, Any] = {}
        for key, value in part:
            acc[key] = fn(acc[key], value) if key in acc else value
        return acc.items()


@dataclass(frozen=True)
class _AggregateSeq:
    zero: Any
    seq_fn: Callable[[Any, Any], Any]

    def __call__(self, part: Iterator[tuple[Any, Any]]
                 ) -> Iterable[tuple[Any, Any]]:
        seq_fn, zero = self.seq_fn, self.zero
        acc: dict[Any, Any] = {}
        for key, value in part:
            acc[key] = seq_fn(acc.get(key, zero), value)
        return acc.items()


@dataclass(frozen=True)
class _AggregateMerge:
    comb_fn: Callable[[Any, Any], Any]

    def __call__(self, part: Iterator[tuple[Any, Any]]
                 ) -> Iterable[tuple[Any, Any]]:
        comb_fn = self.comb_fn
        acc: dict[Any, Any] = {}
        for key, value in part:
            acc[key] = comb_fn(acc[key], value) if key in acc else value
        return acc.items()


class _DistinctKey:
    def __call__(self, part: Iterator[Any]) -> Iterable[tuple[Any, None]]:
        return ((x, None) for x in part)


class _DistinctValues:
    def __call__(self, part: Iterator[tuple[Any, Any]]) -> Iterable[Any]:
        return (k for k, _ in part)


class _KeepFirst:
    def __call__(self, a: Any, _: Any) -> Any:
        return a


@dataclass(frozen=True)
class _JoinTag:
    tag: int

    def __call__(self, part: Iterator[tuple[Any, Any]]
                 ) -> Iterable[tuple[Any, tuple[int, Any]]]:
        tag = self.tag
        return ((k, (tag, v)) for k, v in part)


@dataclass(frozen=True)
class _JoinMerge:
    keep_unmatched_left: bool

    def __call__(self, part: Iterator[tuple[Any, tuple[int, Any]]]
                 ) -> Iterable[Any]:
        lefts: dict[Any, list[Any]] = {}
        rights: dict[Any, list[Any]] = {}
        for key, (tag, value) in part:
            (lefts if tag == 0 else rights).setdefault(key, []).append(value)
        for key, left_values in lefts.items():
            right_values = rights.get(key)
            if right_values:
                for lv in left_values:
                    for rv in right_values:
                        yield key, (lv, rv)
            elif self.keep_unmatched_left:
                for lv in left_values:
                    yield key, (lv, None)


@dataclass(frozen=True)
class _SortGather:
    key_fn: Callable[[Any], Any]
    reverse: bool

    def __call__(self, rows: list[Any]) -> Iterable[Any]:
        return sorted(rows, key=self.key_fn, reverse=self.reverse)


@dataclass(frozen=True)
class _RepartitionKey:
    num_partitions: int

    def __call__(self, part: Iterator[Any]) -> Iterable[tuple[int, Any]]:
        n = self.num_partitions
        return ((i % n, x) for i, x in enumerate(part))


class _RepartitionValues:
    def __call__(self, part: Iterator[tuple[int, Any]]) -> Iterable[Any]:
        return (x for _, x in part)


@dataclass(frozen=True)
class _Sampler:
    fraction: float
    seed: int

    def __call__(self, index: int, part: Iterator[Any]) -> Iterable[Any]:
        import numpy as np

        rng = np.random.default_rng((self.seed, index))
        fraction = self.fraction
        return (x for x in part if rng.random() < fraction)


@dataclass(frozen=True)
class _Indexer:
    offsets: tuple[int, ...]

    def __call__(self, index: int, part: Iterator[Any]
                 ) -> Iterable[tuple[Any, int]]:
        offset = self.offsets[index]
        return ((x, offset + i) for i, x in enumerate(part))


class _CountPartition:
    def __call__(self, part: Iterator[Any]) -> Iterable[int]:
        return [sum(1 for _ in part)]


@dataclass(frozen=True)
class _TakeOrderedLocal:
    n: int
    key_fn: Callable[[Any], Any] | None

    def __call__(self, part: Iterator[Any]) -> Iterable[Any]:
        key = self.key_fn if self.key_fn is not None else _identity
        return heapq.nsmallest(self.n, part, key=key)


def _identity(x: Any) -> Any:
    return x


class EngineContext:
    """Entry point, analogous to a SparkContext.

    ``parallelism`` is the default partition count for new datasets and
    the worker-pool width of the bundled executor; ``backend``,
    ``chunk_size``, ``retry_policy``, ``chaos``, and ``trace`` are
    forwarded to :class:`LocalExecutor` (``backend="process"``
    schedules CPU-bound stages on a process pool; ``retry_policy`` and
    ``chaos`` configure fault-tolerant execution and deterministic
    fault injection; ``trace`` attaches a
    :class:`~repro.engine.trace.RunTrace` flight recorder).
    """

    def __init__(self, parallelism: int = 4,
                 executor: LocalExecutor | None = None, *,
                 backend: str = "thread",
                 chunk_size: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 chaos: ChaosInjector | None = None,
                 trace: RunTrace | None = None) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        self.executor = executor or LocalExecutor(
            max_workers=parallelism, backend=backend, chunk_size=chunk_size,
            retry_policy=retry_policy, chaos=chaos, trace=trace,
        )

    def parallelize(self, data: Iterable[T],
                    num_partitions: int | None = None,
                    name: str = "source") -> "Dataset[T]":
        """Create a dataset from an in-memory collection."""
        rows = list(data)
        parts = num_partitions or self.parallelism
        return Dataset(self, SourceNode(_chunk(rows, parts), name=name))

    def empty(self) -> "Dataset[Any]":
        """A dataset with no rows."""
        return self.parallelize([], num_partitions=1, name="empty")

    def scan_columns(self, table: Any, partition: str | None = None,
                     names: Sequence[str] | None = None, *,
                     predicate: Any = None,
                     num_partitions: int | None = None,
                     name: str = "scan_columns") -> "Dataset[Any]":
        """Column-batch scan source over a columnar table.

        The columnar analogue of :meth:`parallelize`: ``table`` is any
        object exposing ``column_batches(partition=..., names=...,
        predicate=..., batches=...)`` (duck-typed so the engine stays
        independent of the storage layer — in practice a
        :class:`repro.storage.table.Table`).  Each engine partition
        holds exactly one :class:`~repro.storage.columns.ColumnBatch`,
        a zero-copy row-range of typed column arrays, so stages operate
        on ``(vm_ids, name_ids, times, levels, ...)`` vectors instead
        of row dicts.  Partition/column pruning and row predicates are
        pushed down into the store.
        """
        parts = num_partitions or self.parallelism
        batches = table.column_batches(
            partition=partition, names=names, predicate=predicate,
            batches=parts,
        )
        chunks: list[list[Any]] = [[batch] for batch in batches] or [[]]
        return Dataset(self, SourceNode(chunks, name=name))

    @property
    def last_job_metrics(self) -> JobMetrics:
        """Metrics of the most recent action on this context."""
        return self.executor.last_job_metrics

    @property
    def trace(self) -> RunTrace | None:
        """The run trace currently attached to the executor, if any."""
        return self.executor.trace


class Dataset:
    """A lazy, partitioned, immutable collection."""

    def __init__(self, context: EngineContext, node: PlanNode) -> None:
        self._context = context
        self._node = node

    # -- plan introspection -------------------------------------------------

    @property
    def num_partitions(self) -> int:
        """Partition count of this dataset."""
        return self._node.num_partitions

    def explain(self) -> str:
        """Human-readable plan listing (like Spark's ``explain``)."""
        return self._node.explain()

    # -- narrow transformations ---------------------------------------------

    def map_partitions(self, fn: Callable[[Iterator[T]], Iterable[U]],
                       name: str = "map_partitions") -> "Dataset[U]":
        """Transform each partition's iterator as a whole."""
        return Dataset(self._context, NarrowNode(self._node, fn, name))

    def map_partitions_with_index(
        self, fn: Callable[[int, Iterator[T]], Iterable[U]],
        name: str = "map_partitions_with_index",
    ) -> "Dataset[U]":
        """Like :meth:`map_partitions` but ``fn(index, iterator)``."""
        return Dataset(
            self._context, NarrowNode(self._node, fn, name, indexed=True)
        )

    def map(self, fn: Callable[[T], U]) -> "Dataset[U]":
        """Apply ``fn`` to every element."""
        return self.map_partitions(_MapFn(fn), name="map")

    def filter(self, predicate: Callable[[T], bool]) -> "Dataset[T]":
        """Keep elements for which ``predicate`` is true."""
        return self.map_partitions(_FilterFn(predicate), name="filter")

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "Dataset[U]":
        """Apply ``fn`` and flatten the resulting iterables."""
        return self.map_partitions(_FlatMapFn(fn), name="flat_map")

    def key_by(self, key_fn: Callable[[T], K]) -> "Dataset[tuple[K, T]]":
        """Pair every element with a key: ``x -> (key_fn(x), x)``."""
        return self.map_partitions(_KeyByFn(key_fn), name="key_by")

    def map_values(self, fn: Callable[[V], U]) -> "Dataset[tuple[K, U]]":
        """Transform the value of each ``(key, value)`` pair."""
        return self.map_partitions(_MapValuesFn(fn), name="map_values")

    def union(self, other: "Dataset[T]") -> "Dataset[T]":
        """Concatenate two datasets (no dedup, like Spark's union)."""
        if other._context is not self._context:
            raise ValueError("cannot union datasets from different contexts")
        return Dataset(self._context, UnionNode((self._node, other._node)))

    # -- wide transformations -----------------------------------------------

    def partition_by_key(self, num_partitions: int | None = None,
                         name: str = "shuffle") -> "Dataset[tuple[K, V]]":
        """Hash-repartition ``(key, value)`` pairs by key."""
        parts = num_partitions or self._context.parallelism
        return Dataset(self._context, ShuffleNode(self._node, parts, name=name))

    def group_by_key(self, num_partitions: int | None = None
                     ) -> "Dataset[tuple[K, list[V]]]":
        """Group values by key: ``(k, v)* -> (k, [v, ...])``."""
        shuffled = self.partition_by_key(num_partitions, name="group_by_key")
        return shuffled.map_partitions(_GroupValues(), name="group_values")

    def reduce_by_key(self, fn: Callable[[V, V], V],
                      num_partitions: int | None = None
                      ) -> "Dataset[tuple[K, V]]":
        """Combine values per key with an associative function.

        Applies a map-side combine before the shuffle, like Spark.
        """
        pre = self.map_partitions(_ReduceCombine(fn), name="combine_local")
        shuffled = pre.partition_by_key(num_partitions, name="reduce_by_key")
        return shuffled.map_partitions(_ReduceCombine(fn), name="combine_merge")

    def aggregate_by_key(self, zero: U, seq_fn: Callable[[U, V], U],
                         comb_fn: Callable[[U, U], U],
                         num_partitions: int | None = None
                         ) -> "Dataset[tuple[K, U]]":
        """Per-key aggregation with distinct element/partial combiners."""
        pre = self.map_partitions(
            _AggregateSeq(zero, seq_fn), name="aggregate_local"
        )
        shuffled = pre.partition_by_key(num_partitions, name="aggregate_by_key")
        return shuffled.map_partitions(
            _AggregateMerge(comb_fn), name="aggregate_merge"
        )

    def distinct(self, num_partitions: int | None = None) -> "Dataset[T]":
        """Remove duplicate elements (elements must be hashable)."""
        keyed = self.map_partitions(_DistinctKey(), name="distinct_key")
        reduced = keyed.reduce_by_key(_KeepFirst(), num_partitions)
        return reduced.map_partitions(_DistinctValues(), name="distinct_values")

    def join(self, other: "Dataset[tuple[K, Any]]",
             num_partitions: int | None = None
             ) -> "Dataset[tuple[K, tuple[Any, Any]]]":
        """Inner join of two key/value datasets on key."""
        return self._cogroup_join(other, num_partitions, keep_unmatched_left=False)

    def left_join(self, other: "Dataset[tuple[K, Any]]",
                  num_partitions: int | None = None
                  ) -> "Dataset[tuple[K, tuple[Any, Any | None]]]":
        """Left outer join; unmatched left values pair with ``None``."""
        return self._cogroup_join(other, num_partitions, keep_unmatched_left=True)

    def _cogroup_join(self, other: "Dataset[tuple[K, Any]]",
                      num_partitions: int | None,
                      keep_unmatched_left: bool) -> "Dataset[Any]":
        left = self.map_partitions(_JoinTag(0), name="join_tag_left")
        right = other.map_partitions(_JoinTag(1), name="join_tag_right")
        shuffled = left.union(right).partition_by_key(num_partitions, name="join")
        return shuffled.map_partitions(
            _JoinMerge(keep_unmatched_left), name="join_merge"
        )

    def sort_by(self, key_fn: Callable[[T], Any],
                reverse: bool = False) -> "Dataset[T]":
        """Globally sort (gathers to a single partition)."""
        node = GatherNode(
            self._node, _SortGather(key_fn, reverse), name="sort_by"
        )
        return Dataset(self._context, node)

    def repartition(self, num_partitions: int) -> "Dataset[T]":
        """Rebalance into ``num_partitions`` partitions."""
        indexed = self.map_partitions(
            _RepartitionKey(num_partitions), name="repartition_key"
        )
        shuffled = Dataset(
            self._context,
            ShuffleNode(indexed._node, num_partitions, name="repartition"),
        )
        return shuffled.map_partitions(
            _RepartitionValues(), name="repartition_values"
        )

    def sample(self, fraction: float, seed: int = 0) -> "Dataset[T]":
        """Bernoulli sample of roughly ``fraction`` of the elements.

        Deterministic for a fixed seed and partitioning (each partition
        uses an independent substream keyed by its index).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return self.map_partitions_with_index(
            _Sampler(fraction, seed), name="sample"
        )

    def zip_with_index(self) -> "Dataset[tuple[T, int]]":
        """Pair each element with its global 0-based index.

        Like Spark's ``zipWithIndex``, this triggers a job to count
        per-partition sizes before building the indexed dataset.
        """
        sizes = self.map_partitions(
            _CountPartition(), name="count_partitions"
        ).collect()
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)
        return self.map_partitions_with_index(
            _Indexer(tuple(offsets)), name="zip_with_index"
        )

    def persist(self) -> "Dataset[T]":
        """Materialize now and return a dataset backed by the result.

        The analogue of ``cache()`` + an action: downstream plans reuse
        the computed partitions instead of recomputing the lineage.
        """
        partitions = self._context.executor.execute(self._node)
        return Dataset(self._context, SourceNode(partitions, name="persisted"))

    # -- actions --------------------------------------------------------------

    def take_ordered(self, n: int,
                     key_fn: Callable[[T], Any] | None = None) -> list[T]:
        """The ``n`` smallest elements by ``key_fn`` (a cheap top-N).

        Each partition pre-selects its local top-N before the global
        merge, so only ``n * num_partitions`` elements are gathered.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        key = key_fn if key_fn is not None else _identity
        local = self.map_partitions(
            _TakeOrderedLocal(n, key_fn), name="take_ordered_local"
        )
        return heapq.nsmallest(n, local.collect(), key=key)

    def collect(self) -> list[T]:
        """Materialize all elements in partition order."""
        partitions = self._context.executor.execute(self._node)
        return [x for partition in partitions for x in partition]

    def count(self) -> int:
        """Number of elements."""
        return len(self.collect())

    def take(self, n: int) -> list[T]:
        """The first ``n`` elements in partition order."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return self.collect()[:n]

    def first(self) -> T:
        """The first element; raises ``IndexError`` when empty."""
        rows = self.take(1)
        if not rows:
            raise IndexError("first() on an empty dataset")
        return rows[0]

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        """Fold all elements with an associative function."""
        rows = self.collect()
        if not rows:
            raise ValueError("reduce() on an empty dataset")
        result = rows[0]
        for row in rows[1:]:
            result = fn(result, row)
        return result

    def to_dict(self) -> dict[Any, Any]:
        """Materialize a key/value dataset as a dict (last key wins)."""
        return dict(self.collect())

    def count_by_key(self) -> dict[Any, int]:
        """Count elements per key of a key/value dataset."""
        counts = self.map_values(_One()).reduce_by_key(_Add())
        return counts.to_dict()


class _One:
    def __call__(self, _: Any) -> int:
        return 1


class _Add:
    def __call__(self, a: int, b: int) -> int:
        return a + b

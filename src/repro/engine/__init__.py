"""Miniature DAG-scheduled dataset engine (Apache Spark stand-in).

The paper computes CDI daily with a Spark application over ~10 GB of
events (Section V).  This package provides the equivalent substrate:

* :class:`EngineContext` / :class:`Dataset` — lazy partitioned
  collections with narrow (map/filter/flat_map) and wide
  (group_by_key/reduce_by_key/join/distinct/sort) operations;
* :class:`LocalExecutor` — thread-pool scheduling with task retries,
  failure injection, and per-task metrics;
* :mod:`repro.engine.plan` — the logical plan node DAG.
"""

from repro.engine.chaos import (
    ChaosInjector,
    DroppedResult,
    FaultRule,
    InjectedFault,
)
from repro.engine.dataset import Dataset, EngineContext
from repro.engine.executor import (
    JobMetrics,
    LocalExecutor,
    TaskFailedError,
    TaskFailure,
    TaskMetrics,
    TaskTimeoutError,
)
from repro.engine.retry import RetryPolicy, spark_like_policy
from repro.engine.trace import (
    RunTrace,
    Span,
    TaskAttemptRecord,
    executor_tracing,
    trace_span,
)
from repro.engine.plan import (
    GatherNode,
    NarrowNode,
    PlanNode,
    ShuffleNode,
    SourceNode,
    UnionNode,
    stage_boundaries,
)

__all__ = [
    "ChaosInjector",
    "Dataset",
    "DroppedResult",
    "EngineContext",
    "FaultRule",
    "GatherNode",
    "InjectedFault",
    "JobMetrics",
    "LocalExecutor",
    "NarrowNode",
    "PlanNode",
    "RetryPolicy",
    "RunTrace",
    "ShuffleNode",
    "SourceNode",
    "Span",
    "TaskAttemptRecord",
    "TaskFailedError",
    "TaskFailure",
    "TaskMetrics",
    "TaskTimeoutError",
    "UnionNode",
    "executor_tracing",
    "spark_like_policy",
    "stage_boundaries",
    "trace_span",
]

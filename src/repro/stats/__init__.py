"""Hypothesis testing for A/B-tested operation actions (Fig. 10).

* :mod:`repro.stats.assumptions` — Shapiro-Wilk and Levene gates.
* :mod:`repro.stats.omnibus` — one-way ANOVA, Welch's ANOVA,
  Kruskal-Wallis H.
* :mod:`repro.stats.posthoc` — Tukey HSD / Tukey-Kramer, Games-Howell,
  Dunn.
* :mod:`repro.stats.workflow` — the test-selection ladder.
"""

from repro.stats.assumptions import (
    CheckResult,
    all_normal,
    levene_homogeneity,
    shapiro_normality,
)
from repro.stats.omnibus import (
    OmnibusResult,
    kruskal_wallis,
    one_way_anova,
    welch_anova,
)
from repro.stats.power import (
    ExperimentPlan,
    achieved_power,
    detectable_difference,
    plan_experiment,
    required_sample_size,
)
from repro.stats.posthoc import (
    PairResult,
    dunn,
    games_howell,
    tukey_hsd,
    tukey_kramer,
)
from repro.stats.workflow import (
    HypothesisTestWorkflow,
    PairwiseFinding,
    WorkflowResult,
)

__all__ = [
    "CheckResult",
    "ExperimentPlan",
    "achieved_power",
    "detectable_difference",
    "plan_experiment",
    "required_sample_size",
    "HypothesisTestWorkflow",
    "OmnibusResult",
    "PairResult",
    "PairwiseFinding",
    "WorkflowResult",
    "all_normal",
    "dunn",
    "games_howell",
    "kruskal_wallis",
    "levene_homogeneity",
    "one_way_anova",
    "shapiro_normality",
    "tukey_hsd",
    "tukey_kramer",
    "welch_anova",
]

"""The Fig. 10 hypothesis-test selection workflow.

The paper selects omnibus and post-hoc tests "according to the
distribution, variance homogeneity, and the number of samples"
(Section VI-D).  The ladder implemented here:

1. Shapiro-Wilk on every group.
2. All normal → Levene homogeneity check:
   * homogeneous → **one-way ANOVA**; post-hoc **Tukey HSD**
     (equal sizes) / **Tukey-Kramer** (unequal sizes);
   * heteroscedastic → **Welch's ANOVA**; post-hoc **Games-Howell**.
3. Any non-normal → **Kruskal-Wallis H**; post-hoc **Dunn**.
4. Post-hoc analysis runs only when the omnibus result is significant
   and there are more than two groups (with exactly two groups the
   omnibus already identifies the differing pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.stats.assumptions import (
    CheckResult,
    levene_homogeneity,
    shapiro_normality,
)
from repro.stats.omnibus import (
    OmnibusResult,
    kruskal_wallis,
    one_way_anova,
    welch_anova,
)
from repro.stats.posthoc import PairResult, dunn, games_howell, tukey_hsd


@dataclass(frozen=True, slots=True)
class PairwiseFinding:
    """One labelled post-hoc pair (names instead of indices)."""

    pair: tuple[str, str]
    statistic: float
    pvalue: float
    significant: bool


@dataclass(frozen=True, slots=True)
class WorkflowResult:
    """Full outcome of the Fig. 10 ladder on one set of groups."""

    group_names: tuple[str, ...]
    normality: tuple[CheckResult, ...]
    homogeneity: CheckResult | None
    omnibus: OmnibusResult
    omnibus_significant: bool
    posthoc_test: str | None
    pairs: tuple[PairwiseFinding, ...] = field(default=())

    @property
    def significant_pairs(self) -> list[tuple[str, str]]:
        """Pairs the post-hoc analysis found significantly different."""
        return [p.pair for p in self.pairs if p.significant]


class HypothesisTestWorkflow:
    """Runs the Fig. 10 ladder on named sample groups."""

    def __init__(self, alpha: float = 0.05, *,
                 normality_alpha: float = 0.05,
                 homogeneity_alpha: float = 0.05,
                 dunn_adjust: str = "holm") -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self._alpha = alpha
        self._normality_alpha = normality_alpha
        self._homogeneity_alpha = homogeneity_alpha
        self._dunn_adjust = dunn_adjust

    def run(self, groups: Mapping[str, Sequence[float]]) -> WorkflowResult:
        """Select and run the appropriate tests for ``groups``."""
        names = tuple(groups)
        samples = [groups[name] for name in names]
        if len(names) < 2:
            raise ValueError(f"need at least 2 groups, got {len(names)}")

        normality = tuple(shapiro_normality(samples, self._normality_alpha))
        homogeneity: CheckResult | None = None

        if all(check.passed for check in normality):
            homogeneity = levene_homogeneity(samples, self._homogeneity_alpha)
            if homogeneity.passed:
                omnibus = one_way_anova(samples)
                posthoc_test = "tukey_hsd"
                posthoc_fn = tukey_hsd
            else:
                omnibus = welch_anova(samples)
                posthoc_test = "games_howell"
                posthoc_fn = games_howell
        else:
            omnibus = kruskal_wallis(samples)
            posthoc_test = "dunn"
            posthoc_fn = lambda s: dunn(s, adjust=self._dunn_adjust)  # noqa: E731

        significant = omnibus.significant(self._alpha)
        pairs: tuple[PairwiseFinding, ...] = ()
        chosen_posthoc: str | None = None
        if significant and len(names) > 2:
            chosen_posthoc = posthoc_test
            raw = posthoc_fn(samples)
            pairs = tuple(
                self._label_pair(names, result) for result in raw
            )
        return WorkflowResult(
            group_names=names,
            normality=normality,
            homogeneity=homogeneity,
            omnibus=omnibus,
            omnibus_significant=significant,
            posthoc_test=chosen_posthoc,
            pairs=pairs,
        )

    def _label_pair(self, names: tuple[str, ...],
                    result: PairResult) -> PairwiseFinding:
        return PairwiseFinding(
            pair=(names[result.group_a], names[result.group_b]),
            statistic=result.statistic,
            pvalue=result.pvalue,
            significant=result.significant(self._alpha),
        )

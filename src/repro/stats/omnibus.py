"""Omnibus tests: do the groups differ at all? (paper Section VI-D)

Three tests cover the Fig. 10 branches:

* :func:`one_way_anova` — classical F test (normal, equal variances);
* :func:`welch_anova` — Welch's heteroscedastic F test (normal,
  unequal variances), implemented from scratch;
* :func:`kruskal_wallis` — rank-based H test (non-normal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True, slots=True)
class OmnibusResult:
    """Outcome of one omnibus test."""

    test: str
    statistic: float
    pvalue: float
    df_between: float
    df_within: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the group difference is significant at ``alpha``."""
        return self.pvalue < alpha


def _validate(groups: Sequence[Sequence[float]],
              min_size: int = 2) -> list[np.ndarray]:
    arrays = [np.asarray(g, dtype=float) for g in groups]
    if len(arrays) < 2:
        raise ValueError(f"need at least 2 groups, got {len(arrays)}")
    for index, group in enumerate(arrays):
        if group.size < min_size:
            raise ValueError(
                f"group {index} has {group.size} samples; need >= {min_size}"
            )
    return arrays


def one_way_anova(groups: Sequence[Sequence[float]]) -> OmnibusResult:
    """Classical one-way ANOVA F test, computed from scratch."""
    arrays = _validate(groups)
    k = len(arrays)
    n_total = sum(g.size for g in arrays)
    pooled = np.concatenate(arrays)
    grand_mean = float(pooled.mean())
    ss_between = sum(g.size * (g.mean() - grand_mean) ** 2 for g in arrays)
    ss_within = sum(((g - g.mean()) ** 2).sum() for g in arrays)
    df_between = k - 1
    df_within = n_total - k
    if df_within <= 0:
        raise ValueError("not enough samples for within-group variance")
    ms_between = ss_between / df_between
    ms_within = ss_within / df_within
    # A constant group's mean can round by an ulp, leaving residual
    # "variance" of order (scale * eps)^2 instead of exact zero —
    # anything at or below this floor is float jitter, not structure.
    jitter = (1e-12 * (float(np.abs(pooled).max()) + 1.0)) ** 2
    if ms_within <= jitter:
        # All groups constant: F is infinite if the means truly differ.
        # Guard against float jitter making identical means look
        # infinitesimally different.
        tolerance = 1e-10 * (abs(grand_mean) + 1.0) ** 2
        means_differ = ms_between > tolerance
        statistic = float("inf") if means_differ else 0.0
        pvalue = 0.0 if means_differ else 1.0
    else:
        statistic = float(ms_between / ms_within)
        pvalue = float(stats.f.sf(statistic, df_between, df_within))
    return OmnibusResult("one_way_anova", statistic, pvalue,
                         float(df_between), float(df_within))


def welch_anova(groups: Sequence[Sequence[float]]) -> OmnibusResult:
    """Welch's heteroscedastic one-way ANOVA (Welch 1951)."""
    arrays = _validate(groups)
    k = len(arrays)
    sizes = np.array([g.size for g in arrays], dtype=float)
    means = np.array([g.mean() for g in arrays])
    variances = np.array([g.var(ddof=1) for g in arrays])
    if np.any(variances == 0.0):
        # Degenerate constant group: fall back to exact logic — if any
        # two means differ the difference is certain.
        distinct = len(set(float(m) for m in means)) > 1
        return OmnibusResult("welch_anova",
                             float("inf") if distinct else 0.0,
                             0.0 if distinct else 1.0,
                             float(k - 1), float("inf"))
    w = sizes / variances
    w_sum = w.sum()
    weighted_mean = float((w * means).sum() / w_sum)
    a = (w * (means - weighted_mean) ** 2).sum() / (k - 1)
    b = (
        2.0 * (k - 2) / (k**2 - 1)
        * ((1.0 - w / w_sum) ** 2 / (sizes - 1)).sum()
    )
    statistic = float(a / (1.0 + b))
    df_between = k - 1
    df_within = float(
        (k**2 - 1) / (3.0 * ((1.0 - w / w_sum) ** 2 / (sizes - 1)).sum())
    )
    pvalue = float(stats.f.sf(statistic, df_between, df_within))
    return OmnibusResult("welch_anova", statistic, pvalue,
                         float(df_between), df_within)


def kruskal_wallis(groups: Sequence[Sequence[float]]) -> OmnibusResult:
    """Kruskal-Wallis H test (rank-based, distribution-free)."""
    arrays = _validate(groups)
    if np.ptp(np.concatenate(arrays)) == 0:
        # Every observation identical: no difference by definition
        # (scipy raises on all-identical input).
        return OmnibusResult("kruskal_wallis", 0.0, 1.0,
                             float(len(arrays) - 1), float("nan"))
    statistic, pvalue = stats.kruskal(*arrays)
    statistic = float(statistic)
    pvalue = float(pvalue)
    # Near-total ties make scipy's tie correction numerically collapse
    # (tiny negative H, NaN p).  That regime carries no evidence of a
    # difference, so report it as such.
    if not np.isfinite(pvalue) or statistic < 0.0:
        statistic = max(statistic, 0.0)
        pvalue = 1.0
    return OmnibusResult("kruskal_wallis", statistic, pvalue,
                         float(len(arrays) - 1), float("nan"))

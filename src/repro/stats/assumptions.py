"""Assumption checks feeding the Fig. 10 test-selection workflow.

The choice of omnibus and post-hoc test "varies according to the
distribution, variance homogeneity, and the number of samples"
(Section VI-D).  This module provides the two gate checks:

* :func:`shapiro_normality` — Shapiro-Wilk normality per group;
* :func:`levene_homogeneity` — Levene's test (Brown-Forsythe variant,
  median-centered) for equal variances across groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Outcome of one assumption check."""

    name: str
    statistic: float
    pvalue: float
    passed: bool


def _as_groups(groups: Sequence[Sequence[float]]) -> list[np.ndarray]:
    arrays = [np.asarray(g, dtype=float) for g in groups]
    if len(arrays) < 2:
        raise ValueError(f"need at least 2 groups, got {len(arrays)}")
    for index, group in enumerate(arrays):
        if group.size < 3:
            raise ValueError(
                f"group {index} has {group.size} samples; need >= 3"
            )
    return arrays


def shapiro_normality(groups: Sequence[Sequence[float]],
                      alpha: float = 0.05) -> list[CheckResult]:
    """Shapiro-Wilk on each group; ``passed`` means "looks normal".

    Constant groups (zero variance) are reported as non-normal with
    p = 0 — Shapiro is undefined there and a constant CDI sequence is
    certainly not Gaussian.
    """
    results = []
    for index, group in enumerate(_as_groups(groups)):
        if np.ptp(group) == 0.0:
            results.append(CheckResult(f"shapiro[{index}]", 0.0, 0.0, False))
            continue
        statistic, pvalue = stats.shapiro(group)
        results.append(
            CheckResult(
                name=f"shapiro[{index}]",
                statistic=float(statistic),
                pvalue=float(pvalue),
                passed=bool(pvalue > alpha),
            )
        )
    return results


def all_normal(groups: Sequence[Sequence[float]],
               alpha: float = 0.05) -> bool:
    """Whether every group passes the Shapiro-Wilk check."""
    return all(r.passed for r in shapiro_normality(groups, alpha))


def levene_homogeneity(groups: Sequence[Sequence[float]],
                       alpha: float = 0.05) -> CheckResult:
    """Brown-Forsythe (median-centered Levene) homogeneity check.

    ``passed`` means the equal-variance assumption holds.  Degenerate
    inputs where every group is constant pass trivially (all variances
    are zero, hence equal).
    """
    arrays = _as_groups(groups)
    if all(np.ptp(g) == 0.0 for g in arrays):
        return CheckResult("levene", 0.0, 1.0, True)
    statistic, pvalue = stats.levene(*arrays, center="median")
    return CheckResult(
        name="levene",
        statistic=float(statistic),
        pvalue=float(pvalue),
        passed=bool(pvalue > alpha),
    )

"""Sample-size / power analysis for CDI A/B tests.

Case 8's test ran three months; a natural planning question is *how
many rule hits are needed* before a mean-CDI difference of a given
size is detectable.  Standard two-sample normal approximations:

* :func:`required_sample_size` — per-arm n to detect an absolute mean
  difference ``delta`` given the CDI standard deviation;
* :func:`detectable_difference` — the flip side: the smallest delta a
  given n can detect;
* :func:`achieved_power` — power of a test at a given n and delta.

These are planning tools; the confirmatory analysis remains the
Fig. 10 workflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats


def _validate(alpha: float, power: float | None = None) -> None:
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if power is not None and not 0 < power < 1:
        raise ValueError(f"power must be in (0, 1), got {power}")


def required_sample_size(delta: float, sigma: float, *,
                         alpha: float = 0.05, power: float = 0.8,
                         two_sided: bool = True) -> int:
    """Per-arm sample size to detect a mean difference ``delta``.

    Two-sample z approximation with equal arms and common ``sigma``::

        n = 2 * ((z_{1-alpha[/2]} + z_{power}) * sigma / delta)^2
    """
    _validate(alpha, power)
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    tail = alpha / 2 if two_sided else alpha
    z_alpha = float(stats.norm.ppf(1 - tail))
    z_power = float(stats.norm.ppf(power))
    n = 2.0 * ((z_alpha + z_power) * sigma / delta) ** 2
    return max(2, math.ceil(n))


def detectable_difference(n: int, sigma: float, *, alpha: float = 0.05,
                          power: float = 0.8,
                          two_sided: bool = True) -> float:
    """Smallest absolute mean difference detectable with ``n`` per arm."""
    _validate(alpha, power)
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    tail = alpha / 2 if two_sided else alpha
    z_alpha = float(stats.norm.ppf(1 - tail))
    z_power = float(stats.norm.ppf(power))
    return (z_alpha + z_power) * sigma * math.sqrt(2.0 / n)


def achieved_power(n: int, delta: float, sigma: float, *,
                   alpha: float = 0.05, two_sided: bool = True) -> float:
    """Power of a two-sample z test at the given configuration."""
    _validate(alpha)
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if sigma <= 0 or delta < 0:
        raise ValueError("sigma must be > 0 and delta >= 0")
    tail = alpha / 2 if two_sided else alpha
    z_alpha = float(stats.norm.ppf(1 - tail))
    noncentrality = delta / (sigma * math.sqrt(2.0 / n))
    return float(stats.norm.cdf(noncentrality - z_alpha))


@dataclass(frozen=True, slots=True)
class ExperimentPlan:
    """A planned A/B test: arms, duration, detectability."""

    arms: int
    hits_per_day: float
    days: int
    per_arm_n: int
    detectable_delta: float


def plan_experiment(*, arms: int, hits_per_day: float, sigma: float,
                    target_delta: float, alpha: float = 0.05,
                    power: float = 0.8) -> ExperimentPlan:
    """How long must the A/B test run to detect ``target_delta``?

    Assumes hits are split evenly across ``arms``.  Case 8's shape:
    three arms, a Performance-CDI sigma around 0.1, and a smallest
    interesting difference of 0.02 (the A-C gap) imply a multi-month
    run — consistent with the paper's three-month duration.
    """
    if arms < 2:
        raise ValueError(f"arms must be >= 2, got {arms}")
    if hits_per_day <= 0:
        raise ValueError(f"hits_per_day must be > 0, got {hits_per_day}")
    per_arm_needed = required_sample_size(
        target_delta, sigma, alpha=alpha, power=power
    )
    days = math.ceil(per_arm_needed * arms / hits_per_day)
    per_arm_actual = int(days * hits_per_day / arms)
    return ExperimentPlan(
        arms=arms,
        hits_per_day=hits_per_day,
        days=days,
        per_arm_n=per_arm_actual,
        detectable_delta=detectable_difference(
            max(2, per_arm_actual), sigma, alpha=alpha, power=power
        ),
    )

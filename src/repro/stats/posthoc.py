"""Post-hoc pairwise comparisons (paper Section VI-D, Table V).

After a significant omnibus result with more than two groups, paired
comparisons identify *which* groups differ.  The four tests named in
the paper are implemented from scratch:

* :func:`tukey_hsd` — Tukey's honestly-significant-difference test for
  equal group sizes (studentized range distribution);
* :func:`tukey_kramer` — the Tukey-Kramer extension to unequal sizes
  (:func:`tukey_hsd` transparently applies it, as is conventional);
* :func:`games_howell` — heteroscedastic pairwise test with
  Welch-Satterthwaite degrees of freedom;
* :func:`dunn` — rank-based multiple comparisons after Kruskal-Wallis,
  with Bonferroni or Holm adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True, slots=True)
class PairResult:
    """One pairwise comparison."""

    group_a: int
    group_b: int
    statistic: float
    pvalue: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the pair differs significantly at ``alpha``."""
        return self.pvalue < alpha


def _validate(groups: Sequence[Sequence[float]]) -> list[np.ndarray]:
    arrays = [np.asarray(g, dtype=float) for g in groups]
    if len(arrays) < 2:
        raise ValueError(f"need at least 2 groups, got {len(arrays)}")
    for index, group in enumerate(arrays):
        if group.size < 2:
            raise ValueError(
                f"group {index} has {group.size} samples; need >= 2"
            )
    return arrays


def tukey_hsd(groups: Sequence[Sequence[float]]) -> list[PairResult]:
    """Tukey HSD / Tukey-Kramer pairwise comparisons.

    Uses the pooled within-group variance and the studentized range
    distribution; with unequal group sizes the Kramer harmonic
    correction applies automatically.
    """
    arrays = _validate(groups)
    k = len(arrays)
    n_total = sum(g.size for g in arrays)
    df_within = n_total - k
    if df_within <= 0:
        raise ValueError("not enough samples for within-group variance")
    ms_within = sum(((g - g.mean()) ** 2).sum() for g in arrays) / df_within

    results = []
    for a, b in combinations(range(k), 2):
        ga, gb = arrays[a], arrays[b]
        diff = abs(float(ga.mean() - gb.mean()))
        if ms_within == 0.0:
            pvalue = 0.0 if diff > 0 else 1.0
            statistic = float("inf") if diff > 0 else 0.0
        else:
            se = np.sqrt(ms_within / 2.0 * (1.0 / ga.size + 1.0 / gb.size))
            statistic = float(diff / se)
            pvalue = float(stats.studentized_range.sf(statistic, k, df_within))
        results.append(PairResult(a, b, statistic, pvalue))
    return results


# Tukey-Kramer is the unequal-n generalization; expose it by name since
# the paper lists both.
tukey_kramer = tukey_hsd


def games_howell(groups: Sequence[Sequence[float]]) -> list[PairResult]:
    """Games-Howell pairwise comparisons (no equal-variance assumption)."""
    arrays = _validate(groups)
    k = len(arrays)
    results = []
    for a, b in combinations(range(k), 2):
        ga, gb = arrays[a], arrays[b]
        var_a = float(ga.var(ddof=1))
        var_b = float(gb.var(ddof=1))
        sa = var_a / ga.size
        sb = var_b / gb.size
        diff = abs(float(ga.mean() - gb.mean()))
        if sa + sb == 0.0:
            results.append(PairResult(a, b,
                                      float("inf") if diff > 0 else 0.0,
                                      0.0 if diff > 0 else 1.0))
            continue
        se = np.sqrt((sa + sb) / 2.0)
        statistic = float(diff / se)
        df_denominator = sa**2 / (ga.size - 1) + sb**2 / (gb.size - 1)
        if df_denominator > 0.0:
            df = (sa + sb) ** 2 / df_denominator
        else:
            # Tiny variances underflow the Welch-Satterthwaite
            # denominator; the df is effectively unbounded.
            df = 1e9
        pvalue = float(stats.studentized_range.sf(statistic, k, df))
        results.append(PairResult(a, b, statistic, pvalue))
    return results


def dunn(groups: Sequence[Sequence[float]],
         adjust: str = "holm") -> list[PairResult]:
    """Dunn's rank-based multiple comparisons with tie correction.

    ``adjust`` is ``"holm"`` (default), ``"bonferroni"`` or ``"none"``.
    """
    if adjust not in ("holm", "bonferroni", "none"):
        raise ValueError(f"unknown adjustment {adjust!r}")
    arrays = _validate(groups)
    k = len(arrays)
    pooled = np.concatenate(arrays)
    n = pooled.size
    ranks = stats.rankdata(pooled)

    mean_ranks = []
    cursor = 0
    for group in arrays:
        mean_ranks.append(float(ranks[cursor:cursor + group.size].mean()))
        cursor += group.size

    # Tie correction term.
    _, tie_counts = np.unique(pooled, return_counts=True)
    tie_term = float((tie_counts**3 - tie_counts).sum()) / (12.0 * (n - 1))
    base_var = n * (n + 1) / 12.0 - tie_term

    raw: list[PairResult] = []
    for a, b in combinations(range(k), 2):
        na, nb = arrays[a].size, arrays[b].size
        se = np.sqrt(base_var * (1.0 / na + 1.0 / nb))
        if se == 0.0:
            statistic = 0.0
            pvalue = 1.0
        else:
            statistic = float(abs(mean_ranks[a] - mean_ranks[b]) / se)
            pvalue = float(2.0 * stats.norm.sf(statistic))
        raw.append(PairResult(a, b, statistic, pvalue))
    return _adjust_pvalues(raw, adjust)


def _adjust_pvalues(results: list[PairResult], method: str) -> list[PairResult]:
    if method == "none" or len(results) <= 1:
        return results
    m = len(results)
    if method == "bonferroni":
        return [
            PairResult(r.group_a, r.group_b, r.statistic,
                       min(1.0, r.pvalue * m))
            for r in results
        ]
    # Holm step-down: sort ascending, multiply by (m - rank), enforce
    # monotonicity.
    order = sorted(range(m), key=lambda i: results[i].pvalue)
    adjusted = [0.0] * m
    running_max = 0.0
    for rank, index in enumerate(order):
        value = min(1.0, results[index].pvalue * (m - rank))
        running_max = max(running_max, value)
        adjusted[index] = running_max
    return [
        PairResult(r.group_a, r.group_b, r.statistic, adjusted[i])
        for i, r in enumerate(results)
    ]

"""Event-surge alerting (Section II-F2).

Missing operations are rare but real; a sudden surge in an event's
volume can indicate a batch of them.  The paper's mechanism: when an
event surges, engineers are paged *if the event is unrelated to user
behaviour or the surge spans multiple customers*.  This module keeps
per-event hourly counts, flags surges against a rolling baseline, and
applies those two escalation conditions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable

import numpy as np

from repro.core.events import Event


@dataclass(frozen=True, slots=True)
class SurgeAlert:
    """An event surge requiring engineer attention."""

    event_name: str
    window_start: float
    count: int
    baseline_mean: float
    distinct_targets: int
    escalate: bool
    reason: str


class SurgeDetector:
    """Rolling-baseline surge detection over event streams.

    ``user_behavior_events`` lists event names known to be driven by
    customer actions (e.g. a customer-initiated reboot storm); surges
    in those escalate only when they span ``multi_customer_threshold``
    or more distinct targets.
    """

    def __init__(self, *, window: float = 3600.0, history: int = 24,
                 surge_factor: float = 3.0, min_count: int = 10,
                 user_behavior_events: Iterable[str] = (),
                 multi_customer_threshold: int = 3) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if history < 3:
            raise ValueError(f"history must be >= 3, got {history}")
        if surge_factor <= 1:
            raise ValueError("surge_factor must be > 1")
        self._window = window
        self._history = history
        self._surge_factor = surge_factor
        self._min_count = min_count
        self._user_behavior = frozenset(user_behavior_events)
        self._multi_customer = multi_customer_threshold
        self._counts: dict[str, Deque[int]] = {}

    def observe_window(self, events: list[Event], window_start: float
                       ) -> list[SurgeAlert]:
        """Process one window's events; returns surge alerts.

        Windows must be fed in chronological order; each call both
        evaluates against and extends the per-event history.
        """
        by_name: dict[str, list[Event]] = {}
        for event in events:
            by_name.setdefault(event.name, []).append(event)

        alerts: list[SurgeAlert] = []
        names = set(by_name) | set(self._counts)
        for name in sorted(names):
            group = by_name.get(name, [])
            count = len(group)
            history = self._counts.setdefault(
                name, deque(maxlen=self._history)
            )
            alert = self._evaluate(name, group, count, history, window_start)
            if alert is not None:
                alerts.append(alert)
            history.append(count)
        return alerts

    def _evaluate(self, name: str, group: list[Event], count: int,
                  history: Deque[int],
                  window_start: float) -> SurgeAlert | None:
        if len(history) < 3 or count < self._min_count:
            return None
        baseline = float(np.mean(history))
        threshold = max(self._surge_factor * baseline, float(self._min_count))
        if count <= threshold:
            return None
        distinct_targets = len({event.target for event in group})
        user_driven = name in self._user_behavior
        if not user_driven:
            escalate = True
            reason = "event unrelated to user behavior"
        elif distinct_targets >= self._multi_customer:
            escalate = True
            reason = (
                f"user-driven event spans {distinct_targets} customers"
            )
        else:
            escalate = False
            reason = "user-driven surge confined to few customers"
        return SurgeAlert(
            event_name=name, window_start=window_start, count=count,
            baseline_mean=baseline, distinct_targets=distinct_targets,
            escalate=escalate, reason=reason,
        )

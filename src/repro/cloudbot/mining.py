"""FP-growth association mining for rule discovery (Section II-D).

Operation rules combine expert knowledge with "association mining
algorithms [29]" (Borgelt's FP-growth).  This module implements
FP-growth from scratch over event co-occurrence transactions (the
events active together on one target) and derives association-rule
candidates with support/confidence/lift — raw material for new
operation rules.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence


@dataclass
class _FpNode:
    item: str | None
    count: int = 0
    parent: "_FpNode | None" = None
    children: dict[str, "_FpNode"] = field(default_factory=dict)


class _FpTree:
    def __init__(self, transactions: Sequence[Sequence[str]],
                 min_count: int) -> None:
        counts = Counter(item for t in transactions for item in set(t))
        self.item_counts = {
            item: count for item, count in counts.items() if count >= min_count
        }
        # Global frequency order (ties by name) keeps paths maximally shared.
        self._order = {
            item: rank
            for rank, item in enumerate(
                sorted(self.item_counts, key=lambda i: (-self.item_counts[i], i))
            )
        }
        self.root = _FpNode(item=None)
        self.header: dict[str, list[_FpNode]] = {}
        for transaction in transactions:
            items = sorted(
                {i for i in transaction if i in self.item_counts},
                key=lambda i: self._order[i],
            )
            self._insert(items)

    def _insert(self, items: list[str]) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FpNode(item=item, parent=node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += 1
            node = child

    def prefix_paths(self, item: str) -> list[tuple[list[str], int]]:
        paths = []
        for node in self.header.get(item, []):
            path: list[str] = []
            current = node.parent
            while current is not None and current.item is not None:
                path.append(current.item)
                current = current.parent
            if path:
                paths.append((list(reversed(path)), node.count))
        return paths


def fp_growth(transactions: Sequence[Sequence[str]],
              min_support: float = 0.1) -> dict[frozenset[str], int]:
    """All frequent itemsets with their absolute support counts.

    ``min_support`` is relative to the number of transactions.
    """
    if not 0 < min_support <= 1:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    if not transactions:
        return {}
    min_count = max(1, int(round(min_support * len(transactions))))
    results: dict[frozenset[str], int] = {}
    _mine(list(transactions), min_count, frozenset(), results)
    return results


def _mine(transactions: list[Sequence[str]], min_count: int,
          suffix: frozenset[str],
          results: dict[frozenset[str], int]) -> None:
    tree = _FpTree(transactions, min_count)
    # Process items in reverse frequency order (least frequent first).
    for item in sorted(tree.item_counts,
                       key=lambda i: (tree.item_counts[i], i)):
        support = tree.item_counts[item]
        itemset = suffix | {item}
        results[frozenset(itemset)] = support
        conditional: list[Sequence[str]] = []
        for path, count in tree.prefix_paths(item):
            conditional.extend([path] * count)
        if conditional:
            _mine(conditional, min_count, frozenset(itemset), results)


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """Candidate rule ``antecedent -> consequent``."""

    antecedent: frozenset[str]
    consequent: frozenset[str]
    support: float
    confidence: float
    lift: float


def association_rules(transactions: Sequence[Sequence[str]],
                      min_support: float = 0.1,
                      min_confidence: float = 0.8) -> list[AssociationRule]:
    """Association rules from frequent itemsets, sorted by lift.

    Candidates feed the operation-rule review process; a high-lift rule
    like ``{nic_flapping} -> {slow_io}`` suggests the
    ``nic_error_cause_slow_io`` combination of Fig. 1.
    """
    if not 0 < min_confidence <= 1:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    itemsets = fp_growth(transactions, min_support)
    total = len(transactions)
    rules: list[AssociationRule] = []
    for itemset, count in itemsets.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset)
        for size in range(1, len(items)):
            for antecedent_items in combinations(items, size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                antecedent_count = itemsets.get(antecedent)
                consequent_count = itemsets.get(consequent)
                if not antecedent_count or not consequent_count:
                    continue
                confidence = count / antecedent_count
                if confidence < min_confidence:
                    continue
                lift = confidence / (consequent_count / total)
                rules.append(
                    AssociationRule(
                        antecedent=antecedent, consequent=consequent,
                        support=count / total, confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda r: (-r.lift, -r.confidence, sorted(r.antecedent)))
    return rules


def transactions_from_events(
    events: Iterable, window: float = 600.0
) -> list[list[str]]:
    """Build co-occurrence transactions from raw events.

    Events on the same target within ``window`` seconds form one
    transaction — the "concurrent occurrence" notion the Rule Engine
    matches on.
    """
    per_target: dict[str, list] = {}
    for event in events:
        per_target.setdefault(event.target, []).append(event)
    transactions: list[list[str]] = []
    for target_events in per_target.values():
        target_events.sort(key=lambda e: e.time)
        current: list = []
        window_start = None
        for event in target_events:
            if window_start is None or event.time - window_start > window:
                if current:
                    transactions.append(sorted({e.name for e in current}))
                current = [event]
                window_start = event.time
            else:
                current.append(event)
        if current:
            transactions.append(sorted({e.name for e in current}))
    return transactions

"""Operation actions (paper Table III).

Actions are what CloudBot executes after a rule matches: VM
operations, NC software/hardware repairs, and NC control actions.
They carry a priority (higher runs first) and a conflict domain so the
Operation Platform can discard conflicting submissions
(Section II-E).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class ActionCategory(enum.Enum):
    """The four action families of Table III."""

    VM_OPERATION = "vm_operation"
    NC_SOFTWARE_REPAIR = "nc_software_repair"
    NC_HARDWARE_REPAIR = "nc_hardware_repair"
    NC_CONTROL = "nc_control"


class ActionType(enum.Enum):
    """Concrete action types with their Table III category."""

    LIVE_MIGRATION = ("live_migration", ActionCategory.VM_OPERATION)
    IN_PLACE_REBOOT = ("in_place_reboot", ActionCategory.VM_OPERATION)
    COLD_MIGRATION = ("cold_migration", ActionCategory.VM_OPERATION)
    DISK_CLEAN = ("disk_clean", ActionCategory.NC_SOFTWARE_REPAIR)
    MEMORY_COMPACTION = ("memory_compaction", ActionCategory.NC_SOFTWARE_REPAIR)
    PROCESS_REPAIR = ("process_repair", ActionCategory.NC_SOFTWARE_REPAIR)
    DEVICE_DISABLE = ("device_disable", ActionCategory.NC_HARDWARE_REPAIR)
    REPAIR_REQUEST = ("repair_request", ActionCategory.NC_HARDWARE_REPAIR)
    FPGA_SOFT_REPAIR = ("fpga_soft_repair", ActionCategory.NC_HARDWARE_REPAIR)
    NC_REBOOT = ("nc_reboot", ActionCategory.NC_CONTROL)
    NC_LOCK = ("nc_lock", ActionCategory.NC_CONTROL)
    NC_DECOMMISSION = ("nc_decommission", ActionCategory.NC_CONTROL)
    NULL_ACTION = ("null_action", ActionCategory.VM_OPERATION)

    def __init__(self, label: str, category: ActionCategory) -> None:
        self.label = label
        self.category = category


#: Action types that move or restart the target and therefore conflict
#: with each other on the same target.
_DISRUPTIVE = {
    ActionType.LIVE_MIGRATION,
    ActionType.IN_PLACE_REBOOT,
    ActionType.COLD_MIGRATION,
    ActionType.NC_REBOOT,
    ActionType.NC_DECOMMISSION,
}


@dataclass(frozen=True, slots=True)
class Action:
    """One submitted operation action.

    ``priority`` orders execution (higher first); ties break by
    submission order.  ``params`` carries action-specific settings,
    e.g. migration parameters (Case 8's candidate actions differ only
    in params and sequencing).
    """

    type: ActionType
    target: str
    priority: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    source_rule: str = ""

    def conflicts_with(self, other: "Action") -> bool:
        """Whether two actions cannot both execute.

        Disruptive actions conflict pairwise on the same target; a
        decommission conflicts with everything on its target.
        """
        if self.target != other.target:
            return False
        if self.type is ActionType.NC_DECOMMISSION or (
            other.type is ActionType.NC_DECOMMISSION
        ):
            return True
        return self.type in _DISRUPTIVE and other.type in _DISRUPTIVE

"""Rule-coverage review: finding missing operations (Section II-F2).

Missing operations are rare but inevitable — "we regularly review and
update the rules to ensure that they cover a wider range of failure
conditions".  This module implements that review:

* :func:`coverage_report` — which events participated in at least one
  rule match vs which fired with no rule reacting;
* :func:`complaint_gaps` — uncovered events correlated with customer
  complaints on the same target (the signal through which missing
  operations actually surface);
* :func:`propose_rules` — association-mining candidates restricted to
  uncovered events, the raw material for the rule-update review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cloudbot.mining import (
    AssociationRule,
    association_rules,
    transactions_from_events,
)
from repro.cloudbot.rules import RuleEngine
from repro.core.events import Event
from repro.telemetry.tickets import Ticket


@dataclass(frozen=True, slots=True)
class CoverageReport:
    """Which event names the current rule set reacts to."""

    covered: frozenset[str]        # referenced by >= 1 rule
    observed: frozenset[str]       # seen in the event stream
    uncovered: frozenset[str]      # observed but unreferenced
    occurrences: Mapping[str, int]  # observed counts per name

    @property
    def coverage_fraction(self) -> float:
        """Share of observed event names covered by some rule."""
        if not self.observed:
            return 1.0
        return len(self.observed & self.covered) / len(self.observed)


def coverage_report(events: Sequence[Event],
                    engine: RuleEngine) -> CoverageReport:
    """Compare the observed event vocabulary against rule references."""
    referenced: set[str] = set()
    for rule in engine.rules():
        referenced |= rule.referenced_events
    occurrences: dict[str, int] = {}
    for event in events:
        occurrences[event.name] = occurrences.get(event.name, 0) + 1
    observed = frozenset(occurrences)
    return CoverageReport(
        covered=frozenset(referenced),
        observed=observed,
        uncovered=observed - referenced,
        occurrences=occurrences,
    )


@dataclass(frozen=True, slots=True)
class ComplaintGap:
    """An uncovered event correlated with customer complaints."""

    event_name: str
    event_count: int
    complaint_count: int
    sample_targets: tuple[str, ...] = field(default=())


def complaint_gaps(events: Sequence[Event], tickets: Sequence[Ticket],
                   engine: RuleEngine, *,
                   correlation_window: float = 6 * 3600.0
                   ) -> list[ComplaintGap]:
    """Uncovered events whose targets also filed complaints nearby.

    A ticket correlates with an event when it concerns the same target
    and arrives within ``correlation_window`` seconds after the event —
    the way real missing operations are identified "through customer
    complaints".  Sorted by complaint count, most painful first.
    """
    report = coverage_report(events, engine)
    tickets_by_target: dict[str, list[Ticket]] = {}
    for ticket in tickets:
        tickets_by_target.setdefault(ticket.target, []).append(ticket)

    gaps: dict[str, dict] = {}
    for event in events:
        if event.name not in report.uncovered:
            continue
        entry = gaps.setdefault(event.name, {
            "events": 0, "complaints": 0, "targets": set(),
        })
        entry["events"] += 1
        for ticket in tickets_by_target.get(event.target, []):
            if 0.0 <= ticket.time - event.time <= correlation_window:
                entry["complaints"] += 1
                entry["targets"].add(event.target)

    results = [
        ComplaintGap(
            event_name=name,
            event_count=entry["events"],
            complaint_count=entry["complaints"],
            sample_targets=tuple(sorted(entry["targets"])[:5]),
        )
        for name, entry in gaps.items()
        if entry["complaints"] > 0
    ]
    results.sort(key=lambda g: (-g.complaint_count, g.event_name))
    return results


def propose_rules(events: Iterable[Event], engine: RuleEngine, *,
                  min_support: float = 0.05, min_confidence: float = 0.7,
                  window: float = 600.0) -> list[AssociationRule]:
    """Association-rule candidates involving uncovered events.

    Mines co-occurrence transactions from the full event stream but
    keeps only candidates whose antecedent or consequent touches an
    uncovered event name — existing coverage needs no new rules.
    """
    event_list = list(events)
    report = coverage_report(event_list, engine)
    if not report.uncovered:
        return []
    transactions = transactions_from_events(event_list, window=window)
    candidates = association_rules(transactions, min_support=min_support,
                                   min_confidence=min_confidence)
    return [
        rule for rule in candidates
        if (rule.antecedent | rule.consequent) & report.uncovered
    ]

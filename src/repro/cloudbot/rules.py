"""Operation rules: boolean event expressions → actions (Section II-D).

An operation rule contains a readable boolean expression over event
names and a list of operation actions.  When the *concurrently active*
events of a target satisfy the expression, the rule matches and its
actions are submitted to the Operation Platform.

The expression grammar (case-insensitive keywords)::

    expr   := term (OR term)*
    term   := factor (AND factor)*
    factor := NOT factor | '(' expr ')' | event_name

Example from Fig. 1: ``slow_io AND nic_flapping`` matches the
``nic_error_cause_slow_io`` rule, while ``nic_flapping AND vm_hang``
(``nic_error_cause_vm_hang``) does not match without a ``vm_hang``
event.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.cloudbot.actions import Action
from repro.core.events import Event

_TOKEN_RE = re.compile(r"\(|\)|[A-Za-z_][A-Za-z0-9_]*")

BoolExpr = Callable[[frozenset[str]], bool]


class RuleSyntaxError(ValueError):
    """The rule expression cannot be parsed."""


def _tokenize(expression: str) -> list[str]:
    tokens = _TOKEN_RE.findall(expression)
    stripped = _TOKEN_RE.sub("", expression).strip()
    if stripped:
        raise RuleSyntaxError(
            f"unexpected characters {stripped!r} in rule expression"
        )
    return tokens


class _Parser:
    """Recursive-descent parser producing a predicate over event sets."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise RuleSyntaxError("unexpected end of rule expression")
        self._position += 1
        return token

    def parse(self) -> tuple[BoolExpr, frozenset[str]]:
        expr, names = self._parse_or()
        if self._peek() is not None:
            raise RuleSyntaxError(f"trailing token {self._peek()!r}")
        return expr, frozenset(names)

    def _parse_or(self) -> tuple[BoolExpr, set[str]]:
        left, names = self._parse_and()
        while self._peek() is not None and self._peek().upper() == "OR":
            self._next()
            right, right_names = self._parse_and()
            previous = left
            left = (lambda e, a=previous, b=right: a(e) or b(e))
            names |= right_names
        return left, names

    def _parse_and(self) -> tuple[BoolExpr, set[str]]:
        left, names = self._parse_factor()
        while self._peek() is not None and self._peek().upper() == "AND":
            self._next()
            right, right_names = self._parse_factor()
            previous = left
            left = (lambda e, a=previous, b=right: a(e) and b(e))
            names |= right_names
        return left, names

    def _parse_factor(self) -> tuple[BoolExpr, set[str]]:
        token = self._next()
        upper = token.upper()
        if upper == "NOT":
            inner, names = self._parse_factor()
            return (lambda e, f=inner: not f(e)), names
        if token == "(":
            expr, names = self._parse_or()
            if self._next() != ")":
                raise RuleSyntaxError("missing closing parenthesis")
            return expr, names
        if token == ")" or upper in ("AND", "OR"):
            raise RuleSyntaxError(f"unexpected token {token!r}")
        name = token
        return (lambda e, n=name: n in e), {name}


def parse_expression(expression: str) -> tuple[BoolExpr, frozenset[str]]:
    """Parse a rule expression into a predicate and its referenced names."""
    tokens = _tokenize(expression)
    if not tokens:
        raise RuleSyntaxError("empty rule expression")
    return _Parser(tokens).parse()


@dataclass(frozen=True)
class OperationRule:
    """One operation rule: expression + actions (Section II-D)."""

    name: str
    expression: str
    actions: tuple[Action, ...] = ()
    description: str = ""
    _predicate: BoolExpr = field(init=False, repr=False, compare=False)
    referenced_events: frozenset[str] = field(init=False, compare=False)

    def __post_init__(self) -> None:
        predicate, names = parse_expression(self.expression)
        object.__setattr__(self, "_predicate", predicate)
        object.__setattr__(self, "referenced_events", names)

    def matches(self, active_event_names: Iterable[str]) -> bool:
        """Whether the active events satisfy this rule's expression."""
        return self._predicate(frozenset(active_event_names))


@dataclass(frozen=True, slots=True)
class RuleMatch:
    """A rule matched on a target at a point in time."""

    rule: OperationRule
    target: str
    time: float
    active_events: tuple[str, ...]

    def actions(self) -> list[Action]:
        """The rule's actions instantiated against the matched target."""
        return [
            Action(type=a.type, target=self.target, priority=a.priority,
                   params=a.params, source_rule=self.rule.name)
            for a in self.rule.actions
        ]


class RuleEngine:
    """Matches operation rules against concurrently active events.

    An event is *active* at time ``t`` when ``t`` lies within
    ``[event.time, event.time + expire_interval]`` — the expiration
    mechanism of Table II keeps event volume manageable.
    """

    def __init__(self, rules: Sequence[OperationRule] = ()) -> None:
        self._rules: dict[str, OperationRule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: OperationRule) -> None:
        """Add or replace a rule by name."""
        self._rules[rule.name] = rule

    def rules(self) -> list[OperationRule]:
        """All registered rules."""
        return list(self._rules.values())

    @staticmethod
    def active_events(events: Iterable[Event], now: float) -> dict[str, set[str]]:
        """Active event names per target at time ``now``."""
        active: dict[str, set[str]] = {}
        for event in events:
            if event.time <= now <= event.expires_at:
                active.setdefault(event.target, set()).add(event.name)
        return active

    def evaluate(self, events: Iterable[Event], now: float) -> list[RuleMatch]:
        """All rule matches across targets at time ``now``."""
        matches: list[RuleMatch] = []
        for target, names in sorted(self.active_events(events, now).items()):
            for rule in self._rules.values():
                if rule.matches(names):
                    matches.append(
                        RuleMatch(rule=rule, target=target, time=now,
                                  active_events=tuple(sorted(names)))
                    )
        return matches

"""CloudBot: the AIOps pipeline the CDI is computed from (Section II).

* :mod:`repro.cloudbot.collector` — raw data collection windows.
* :mod:`repro.cloudbot.extractor` — expert / statistical / learned
  event extraction.
* :mod:`repro.cloudbot.rules` — operation rule expressions and engine.
* :mod:`repro.cloudbot.actions` / :mod:`repro.cloudbot.platform` —
  Table III actions and the central Operation Platform.
* :mod:`repro.cloudbot.mining` — FP-growth rule discovery.
* :mod:`repro.cloudbot.alerting` — event-surge escalation.
* :mod:`repro.cloudbot.predictor` — learned failure prediction.
* :mod:`repro.cloudbot.prioritize` — weight-aware action priority
  (Section VIII-C extension).
"""

from repro.cloudbot.actions import Action, ActionCategory, ActionType
from repro.cloudbot.alerting import SurgeAlert, SurgeDetector
from repro.cloudbot.changes import (
    BreakerDecision,
    ChangeRelease,
    CircuitBreaker,
    RolloutState,
    performance_damage_by_cohort,
    run_gradual_release,
)
from repro.cloudbot.collector import DataCollector, RawDataBundle
from repro.cloudbot.extractor import (
    EventExtractor,
    LogRegexRule,
    MetricThresholdRule,
    StatisticalMetricExtractor,
    default_log_rules,
    default_metric_rules,
)
from repro.cloudbot.mining import (
    AssociationRule,
    association_rules,
    fp_growth,
    transactions_from_events,
)
from repro.cloudbot.noise import (
    ProductSuppressor,
    SuppressionRule,
    TrendSuppressor,
    shared_vm_contention_rule,
)
from repro.cloudbot.platform import (
    ExecutionRecord,
    ExecutionStatus,
    OperationPlatform,
)
from repro.cloudbot.predictor import (
    LogisticFailurePredictor,
    TrainingReport,
    featurize_window,
)
from repro.cloudbot.prioritize import (
    TargetPriority,
    choose_action,
    prioritize_actions,
    score_targets,
)
from repro.cloudbot.review import (
    ComplaintGap,
    CoverageReport,
    complaint_gaps,
    coverage_report,
    propose_rules,
)
from repro.cloudbot.rules import (
    OperationRule,
    RuleEngine,
    RuleMatch,
    RuleSyntaxError,
    parse_expression,
)

__all__ = [
    "Action",
    "ActionCategory",
    "ActionType",
    "AssociationRule",
    "BreakerDecision",
    "ChangeRelease",
    "CircuitBreaker",
    "ComplaintGap",
    "CoverageReport",
    "DataCollector",
    "EventExtractor",
    "ExecutionRecord",
    "ExecutionStatus",
    "LogRegexRule",
    "LogisticFailurePredictor",
    "MetricThresholdRule",
    "OperationPlatform",
    "OperationRule",
    "ProductSuppressor",
    "RawDataBundle",
    "RolloutState",
    "RuleEngine",
    "RuleMatch",
    "RuleSyntaxError",
    "StatisticalMetricExtractor",
    "SuppressionRule",
    "SurgeAlert",
    "SurgeDetector",
    "TrendSuppressor",
    "TargetPriority",
    "TrainingReport",
    "association_rules",
    "choose_action",
    "complaint_gaps",
    "coverage_report",
    "default_log_rules",
    "default_metric_rules",
    "featurize_window",
    "fp_growth",
    "parse_expression",
    "performance_damage_by_cohort",
    "prioritize_actions",
    "propose_rules",
    "run_gradual_release",
    "score_targets",
    "shared_vm_contention_rule",
    "transactions_from_events",
]

"""Data Collector: binds the simulator into raw data bundles.

The production collector is an eBPF-based component streaming metrics,
logs, tickets and topology (Section II-B).  Here it drives the
telemetry simulator for a time window and packages the result for the
Event Extractor, persisting raw events into the SLS-like log store the
way Fig. 4 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.storage.logstore import LogStore
from repro.telemetry.faults import Fault
from repro.telemetry.logs import LogGenerator, LogLine
from repro.telemetry.metrics import MetricGenerator, MetricSample
from repro.telemetry.topology import Fleet


@dataclass(frozen=True, slots=True)
class RawDataBundle:
    """One collection window's multi-modal raw data."""

    start: float
    end: float
    metrics: tuple[MetricSample, ...] = ()
    logs: tuple[LogLine, ...] = ()
    targets: tuple[str, ...] = field(default=())


class DataCollector:
    """Collects metrics and logs for a set of targets over a window.

    ``metric_names`` defaults to every metric the default extractor
    rules consume.  Collection is the expensive step at fleet scale, so
    callers typically pass only the targets affected by faults plus a
    healthy sample (the paper notes the vast majority of machines run
    normally and are not the focus of extraction).
    """

    def __init__(self, fleet: Fleet, *, seed: int = 0,
                 metric_names: Sequence[str] | None = None,
                 interval: float = 60.0,
                 log_store: LogStore | None = None) -> None:
        from repro.telemetry import metrics as m

        self._fleet = fleet
        self._metrics = MetricGenerator(seed=seed)
        self._logs = LogGenerator(seed=seed + 1)
        self._metric_names = tuple(metric_names or (
            m.READ_LATENCY, m.PACKET_LOSS_RATE, m.CPU_STEAL, m.HEARTBEAT,
        ))
        self._interval = interval
        self._log_store = log_store

    def collect(self, targets: Sequence[str], start: float, end: float,
                faults: Sequence[Fault] = ()) -> RawDataBundle:
        """Collect one window of raw data for ``targets``."""
        unknown = [
            t for t in targets
            if t not in self._fleet.vms and t not in self._fleet.ncs
        ]
        if unknown:
            raise KeyError(f"targets not in fleet: {unknown[:5]}")
        samples = self._metrics.emit(
            targets, self._metric_names, start, end,
            interval=self._interval, faults=faults,
        )
        lines = self._logs.emit(targets, start, end, faults)
        if self._log_store is not None:
            for line in lines:
                self._log_store.append(line.time, target=line.target,
                                       line=line.line, kind="log")
        return RawDataBundle(
            start=start, end=end,
            metrics=tuple(samples), logs=tuple(lines),
            targets=tuple(targets),
        )

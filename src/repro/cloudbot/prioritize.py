"""Weight-aware action prioritization (paper Section VIII-C).

The CDI's event weights double as an operational priority signal: when
the platform must choose which VM to migrate first, the VM whose
active events carry higher weights should go first, because clearing
it improves the overall CDI most.  Severity can also pick the action
itself: low-severity issues file a ticket, high-severity ones trigger
immediate migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cloudbot.actions import Action, ActionType
from repro.core.events import Event, EventCatalog
from repro.core.weights import WeightConfig


@dataclass(frozen=True, slots=True)
class TargetPriority:
    """Priority score of one target based on its active events."""

    target: str
    score: float
    dominant_event: str


def score_targets(events: Iterable[Event], catalog: EventCatalog,
                  weights: WeightConfig) -> list[TargetPriority]:
    """Rank targets by the maximum weight of their active events.

    The max (not the sum) matches Algorithm 1's overlap semantics: the
    worst concurrent issue determines the damage.  Ties break toward
    the target with more weighted events, then by name for determinism.
    """
    per_target: dict[str, list[tuple[float, str]]] = {}
    for event in events:
        category = catalog.category_of(event.name)
        if category is None:
            continue
        weight = weights.resolve(event.name, event.level, category)
        per_target.setdefault(event.target, []).append((weight, event.name))

    priorities = []
    for target, weighted in per_target.items():
        weighted.sort(reverse=True)
        score, dominant = weighted[0]
        # Secondary criterion: total weight pressure, scaled down so it
        # can only break ties within one weight level.
        score += min(0.999, sum(w for w, _ in weighted[1:])) * 1e-6
        priorities.append(
            TargetPriority(target=target, score=score, dominant_event=dominant)
        )
    priorities.sort(key=lambda p: (-p.score, p.target))
    return priorities


def choose_action(priority: TargetPriority, *,
                  migrate_above: float = 0.7,
                  ticket_above: float = 0.2) -> Action | None:
    """Severity-matched action for one prioritized target.

    * score > ``migrate_above`` → immediate live migration;
    * score > ``ticket_above`` → repair ticket;
    * otherwise no action (observe only).
    """
    if not 0 <= ticket_above <= migrate_above <= 1:
        raise ValueError(
            "thresholds must satisfy 0 <= ticket_above <= migrate_above <= 1"
        )
    if priority.score > migrate_above:
        return Action(
            type=ActionType.LIVE_MIGRATION, target=priority.target,
            priority=int(priority.score * 100),
            source_rule="weight_prioritizer",
        )
    if priority.score > ticket_above:
        return Action(
            type=ActionType.REPAIR_REQUEST, target=priority.target,
            priority=int(priority.score * 100),
            source_rule="weight_prioritizer",
        )
    return None


def prioritize_actions(events: Sequence[Event], catalog: EventCatalog,
                       weights: WeightConfig, *,
                       migrate_above: float = 0.7,
                       ticket_above: float = 0.2) -> list[Action]:
    """End-to-end: events → ranked targets → severity-matched actions.

    Returned actions are ordered most-urgent first, ready for
    :meth:`repro.cloudbot.platform.OperationPlatform.submit`.
    """
    actions = []
    for priority in score_targets(events, catalog, weights):
        action = choose_action(priority, migrate_above=migrate_above,
                               ticket_above=ticket_above)
        if action is not None:
            actions.append(action)
    return actions

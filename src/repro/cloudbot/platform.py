"""Operation Platform: central control of all actions (Section II-E).

Every operation action flows through the platform, which

* orders execution by priority (ties by submission order),
* discards actions that conflict with already-accepted ones,
* enforces NC locks — a locked NC accepts no new VM creations or
  inbound migrations (the Fig. 1 workflow locks the faulty NC while
  the repair ticket is open),
* executes accepted actions against a mutable placement view of the
  fleet and keeps an audit log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.cloudbot.actions import Action, ActionType
from repro.telemetry.topology import Fleet


class ExecutionStatus(enum.Enum):
    """Outcome of one submitted action."""

    EXECUTED = "executed"
    DISCARDED_CONFLICT = "discarded_conflict"
    REJECTED_LOCKED = "rejected_locked"
    FAILED = "failed"


@dataclass(frozen=True, slots=True)
class ExecutionRecord:
    """Audit log entry for one submitted action."""

    action: Action
    status: ExecutionStatus
    detail: str = ""


class OperationPlatform:
    """Central action scheduler over a fleet placement view.

    The platform owns a mutable ``placements`` map (vm → nc) seeded
    from the fleet; migrations update it.  Ticketing actions
    (``repair_request``) accumulate in ``open_tickets``.
    """

    def __init__(self, fleet: Fleet) -> None:
        self._fleet = fleet
        self.placements: dict[str, str] = {
            vm_id: vm.nc_id for vm_id, vm in fleet.vms.items()
        }
        self.locked_ncs: set[str] = set()
        self.open_tickets: list[Action] = []
        self.log: list[ExecutionRecord] = []

    # -- queries -----------------------------------------------------------

    def is_locked(self, nc_id: str) -> bool:
        """Whether an NC currently refuses new placements."""
        return nc_id in self.locked_ncs

    def vms_on(self, nc_id: str) -> list[str]:
        """VMs currently placed on an NC (live view)."""
        return sorted(vm for vm, nc in self.placements.items() if nc == nc_id)

    # -- submission ----------------------------------------------------------

    def submit(self, actions: list[Action]) -> list[ExecutionRecord]:
        """Order, de-conflict, and execute a batch of actions.

        Returns one record per submitted action, in execution order.
        Conflicting actions are discarded in favour of earlier-ordered
        (higher-priority) ones, matching "determines the execution
        order ... and discards the conflicting ones".
        """
        ordered = sorted(
            enumerate(actions), key=lambda pair: (-pair[1].priority, pair[0])
        )
        accepted: list[Action] = []
        records: list[ExecutionRecord] = []
        for _, action in ordered:
            conflict = next(
                (a for a in accepted if action.conflicts_with(a)), None
            )
            if conflict is not None:
                records.append(
                    ExecutionRecord(
                        action, ExecutionStatus.DISCARDED_CONFLICT,
                        detail=f"conflicts with {conflict.type.label} "
                               f"on {conflict.target}",
                    )
                )
                continue
            record = self._execute(action)
            if record.status is ExecutionStatus.EXECUTED:
                accepted.append(action)
            records.append(record)
        self.log.extend(records)
        return records

    # -- execution -----------------------------------------------------------

    def _execute(self, action: Action) -> ExecutionRecord:
        handler = {
            ActionType.LIVE_MIGRATION: self._migrate,
            ActionType.COLD_MIGRATION: self._migrate,
            ActionType.NC_LOCK: self._lock,
            ActionType.NC_DECOMMISSION: self._decommission,
            ActionType.REPAIR_REQUEST: self._ticket,
        }.get(action.type, self._noop)
        return handler(action)

    def _noop(self, action: Action) -> ExecutionRecord:
        # Reboots/repairs have no placement side effects in this model.
        return ExecutionRecord(action, ExecutionStatus.EXECUTED)

    def _migrate(self, action: Action) -> ExecutionRecord:
        vm_id = action.target
        if vm_id not in self.placements:
            return ExecutionRecord(action, ExecutionStatus.FAILED,
                                   detail=f"unknown VM {vm_id}")
        destination = action.params.get("destination")
        if destination is None:
            destination = self._pick_destination(vm_id)
        if destination is None:
            return ExecutionRecord(action, ExecutionStatus.FAILED,
                                   detail="no unlocked destination NC")
        if self.is_locked(destination):
            return ExecutionRecord(
                action, ExecutionStatus.REJECTED_LOCKED,
                detail=f"destination {destination} is locked",
            )
        self.placements[vm_id] = destination
        return ExecutionRecord(action, ExecutionStatus.EXECUTED,
                               detail=f"moved to {destination}")

    def _pick_destination(self, vm_id: str) -> str | None:
        source = self.placements[vm_id]
        candidates = sorted(
            nc_id for nc_id in self._fleet.ncs
            if nc_id != source and not self.is_locked(nc_id)
        )
        if not candidates:
            return None
        # Least-loaded unlocked NC, by live placement count.
        return min(candidates, key=lambda nc: (len(self.vms_on(nc)), nc))

    def _lock(self, action: Action) -> ExecutionRecord:
        self.locked_ncs.add(action.target)
        return ExecutionRecord(action, ExecutionStatus.EXECUTED)

    def unlock(self, nc_id: str) -> None:
        """Release an NC lock (after repair completes)."""
        self.locked_ncs.discard(nc_id)

    def _decommission(self, action: Action) -> ExecutionRecord:
        nc_id = action.target
        remaining = self.vms_on(nc_id)
        if remaining:
            return ExecutionRecord(
                action, ExecutionStatus.FAILED,
                detail=f"{len(remaining)} VMs still placed on {nc_id}",
            )
        self.locked_ncs.add(nc_id)
        return ExecutionRecord(action, ExecutionStatus.EXECUTED,
                               detail="removed from production")

    def _ticket(self, action: Action) -> ExecutionRecord:
        self.open_tickets.append(action)
        return ExecutionRecord(action, ExecutionStatus.EXECUTED,
                               detail="IDC ticket created")

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Mapping[str, int]:
        """Counts per execution status over the platform's lifetime."""
        counts: dict[str, int] = {}
        for record in self.log:
            counts[record.status.value] = counts.get(record.status.value, 0) + 1
        return counts

"""Change releases: gradual rollout with circuit breaking (Section VI-C).

"The release of changes is a significant contributor to stability
problems.  Despite having implemented a system for gradual releases
and circuit breaking, this system falls short in recognizing non-fatal
problems that require an extended period to emerge."

This module implements that release system so the shortfall can be
demonstrated (and then covered by CDI monitoring):

* :class:`ChangeRelease` — a change rolled out in batches over the
  fleet, with a per-batch soak period;
* :class:`CircuitBreaker` — halts the rollout when *fatal* signals
  (crashes, failed health checks) spike in the newly-changed batch;
* the breaker is intentionally blind to mild performance degradation —
  exactly the gap Cases 1 and 6 describe, which the event-level CDI
  curve later catches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.events import Event, EventCategory, EventCatalog, Severity


class RolloutState(enum.Enum):
    """Lifecycle of a change release."""

    PENDING = "pending"
    IN_PROGRESS = "in_progress"
    HALTED = "halted"
    COMPLETED = "completed"
    ROLLED_BACK = "rolled_back"


@dataclass(frozen=True, slots=True)
class BreakerDecision:
    """Outcome of one circuit-breaker evaluation."""

    tripped: bool
    fatal_events: int
    threshold: int
    reason: str


class CircuitBreaker:
    """Fatal-signal circuit breaker for change rollouts.

    Trips when the just-changed batch produces more than
    ``max_fatal_events`` FATAL-severity events during its soak period.
    Deliberately severity-gated: warnings and mild performance
    degradation do NOT trip it (the paper's stated blind spot).
    """

    def __init__(self, *, max_fatal_events: int = 0,
                 catalog: EventCatalog | None = None) -> None:
        if max_fatal_events < 0:
            raise ValueError("max_fatal_events must be >= 0")
        self._max_fatal = max_fatal_events
        self._catalog = catalog

    def evaluate(self, batch_targets: Sequence[str],
                 soak_events: Sequence[Event]) -> BreakerDecision:
        """Judge one batch's soak-period events."""
        targets = set(batch_targets)
        fatal = [
            e for e in soak_events
            if e.target in targets and e.level is Severity.FATAL
        ]
        tripped = len(fatal) > self._max_fatal
        reason = (
            f"{len(fatal)} fatal events > threshold {self._max_fatal}"
            if tripped else
            f"{len(fatal)} fatal events within threshold"
        )
        return BreakerDecision(
            tripped=tripped, fatal_events=len(fatal),
            threshold=self._max_fatal, reason=reason,
        )


@dataclass
class ChangeRelease:
    """One change rolled out gradually across target batches.

    Drive it with :meth:`release_next_batch` / :meth:`soak`: each batch
    is released, its soak events are fed back, and the breaker decides
    whether the rollout proceeds, with a full audit trail.
    """

    name: str
    targets: Sequence[str]
    batch_size: int
    breaker: CircuitBreaker
    description: str = ""
    state: RolloutState = RolloutState.PENDING
    released: list[str] = field(default_factory=list)
    decisions: list[BreakerDecision] = field(default_factory=list)
    _cursor: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if not self.targets:
            raise ValueError("a change needs at least one target")

    @property
    def current_batch(self) -> list[str]:
        """Targets in the most recently released batch."""
        start = max(0, self._cursor - self.batch_size)
        return list(self.targets[start:self._cursor])

    @property
    def coverage(self) -> float:
        """Fraction of the fleet already running the change."""
        return len(self.released) / len(self.targets)

    def release_next_batch(self) -> list[str]:
        """Release the next batch; returns the newly changed targets."""
        if self.state in (RolloutState.HALTED, RolloutState.ROLLED_BACK):
            raise RuntimeError(f"rollout {self.name!r} is {self.state.value}")
        if self.state is RolloutState.COMPLETED:
            return []
        self.state = RolloutState.IN_PROGRESS
        batch = list(
            self.targets[self._cursor:self._cursor + self.batch_size]
        )
        self._cursor += len(batch)
        self.released.extend(batch)
        if self._cursor >= len(self.targets):
            self.state = RolloutState.COMPLETED
        return batch

    def soak(self, soak_events: Sequence[Event]) -> BreakerDecision:
        """Feed the current batch's soak events through the breaker.

        A tripped breaker halts the rollout (releasing further batches
        raises until :meth:`roll_back` or manual intervention).
        """
        decision = self.breaker.evaluate(self.current_batch, soak_events)
        self.decisions.append(decision)
        if decision.tripped:
            self.state = RolloutState.HALTED
        return decision

    def roll_back(self) -> list[str]:
        """Revert every released target; returns the reverted list."""
        reverted = list(self.released)
        self.released.clear()
        self._cursor = 0
        self.state = RolloutState.ROLLED_BACK
        return reverted


def run_gradual_release(
    change: ChangeRelease,
    soak_events_for_batch: Callable[[int, Sequence[str]], Sequence[Event]],
    *, max_batches: int | None = None,
) -> RolloutState:
    """Drive a rollout to completion, halt, or the batch limit.

    ``soak_events_for_batch(batch_index, batch_targets)`` supplies the
    events observed while the batch soaks (from the extractor in
    production; from a scenario in tests).
    """
    index = 0
    while change.state not in (RolloutState.COMPLETED, RolloutState.HALTED,
                               RolloutState.ROLLED_BACK):
        if max_batches is not None and index >= max_batches:
            break
        batch = change.release_next_batch()
        if not batch:
            break
        decision = change.soak(soak_events_for_batch(index, batch))
        if decision.tripped:
            break
        index += 1
    return change.state


def performance_damage_by_cohort(
    events: Sequence[Event], changed: set[str],
    catalog: EventCatalog,
) -> Mapping[str, float]:
    """Mean performance-event count per target, changed vs unchanged.

    The cheap cohort comparison the CDI architecture-comparison
    workflow formalizes (Section VI-B); used to show what the circuit
    breaker missed.
    """
    counts: dict[str, int] = {}
    targets: set[str] = set()
    for event in events:
        targets.add(event.target)
        if catalog.category_of(event.name) is EventCategory.PERFORMANCE:
            counts[event.target] = counts.get(event.target, 0) + 1
    changed_targets = targets & changed
    unchanged_targets = targets - changed

    def mean_for(group: set[str]) -> float:
        if not group:
            return 0.0
        return sum(counts.get(t, 0) for t in group) / len(group)

    return {
        "changed": mean_for(changed_targets),
        "unchanged": mean_for(unchanged_targets),
    }

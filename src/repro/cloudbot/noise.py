"""Operation-noise reduction (paper Section II-F1).

A single event captures one aspect of the cloud server's status, so
acting on individual events causes noisy (incorrect) operations.  Two
mechanisms from the paper:

* **Product-configuration suppression** — some events are *expected*
  for certain products: CPU contention on a shared-type VM "is
  consistent with the product definition and needs no actions".
  :class:`ProductSuppressor` drops such events before rule matching.
* **Trend-based suppression** — an event that fires at its usual
  background rate is ambient noise; only anomalous fluctuations in its
  trend indicate potential issues.  :class:`TrendSuppressor` keeps a
  per-event daily-count history and passes events through only while
  their volume is anomalous versus that history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, Mapping

import numpy as np

from repro.core.events import Event
from repro.telemetry.topology import Fleet, VmType


@dataclass(frozen=True, slots=True)
class SuppressionRule:
    """Drop events matching a predicate, with a documented reason."""

    name: str
    event_name: str
    predicate: Callable[[Event], bool]
    reason: str


def shared_vm_contention_rule(fleet: Fleet) -> SuppressionRule:
    """The paper's example: vcpu_high on shared VMs is by design."""

    def is_shared_vm(event: Event) -> bool:
        vm = fleet.vms.get(event.target)
        return vm is not None and vm.vm_type is VmType.SHARED

    return SuppressionRule(
        name="shared_vm_cpu_contention",
        event_name="vcpu_high",
        predicate=is_shared_vm,
        reason="CPU contention on shared instances is consistent with "
               "the product definition",
    )


@dataclass
class SuppressionStats:
    """Counts of suppressed events per rule name."""

    by_rule: dict[str, int] = field(default_factory=dict)

    def count(self, rule_name: str) -> None:
        self.by_rule[rule_name] = self.by_rule.get(rule_name, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_rule.values())


class ProductSuppressor:
    """Applies product-configuration suppression rules to event streams."""

    def __init__(self, rules: Iterable[SuppressionRule] = ()) -> None:
        self._rules: list[SuppressionRule] = list(rules)
        self.stats = SuppressionStats()

    def add_rule(self, rule: SuppressionRule) -> None:
        """Register one more suppression rule."""
        self._rules.append(rule)

    def filter(self, events: Iterable[Event]) -> list[Event]:
        """Events that survive all suppression rules."""
        kept: list[Event] = []
        for event in events:
            suppressed_by = next(
                (r for r in self._rules
                 if r.event_name == event.name and r.predicate(event)),
                None,
            )
            if suppressed_by is None:
                kept.append(event)
            else:
                self.stats.count(suppressed_by.name)
        return kept


class TrendSuppressor:
    """Passes events through only when their volume trend is anomalous.

    Feed one window at a time via :meth:`filter_window`.  For each
    event name, the window's count is compared against the rolling
    history; events pass when the count deviates by more than
    ``sigmas`` robust standard deviations (in either direction — a
    vanished event stream is as suspicious as a surge, Case 7).  The
    first ``min_history`` windows always pass (no baseline yet).
    """

    def __init__(self, *, history: int = 14, min_history: int = 3,
                 sigmas: float = 3.0) -> None:
        if history < min_history or min_history < 1:
            raise ValueError(
                f"need history >= min_history >= 1, got "
                f"{history}/{min_history}"
            )
        if sigmas <= 0:
            raise ValueError(f"sigmas must be > 0, got {sigmas}")
        self._history_len = history
        self._min_history = min_history
        self._sigmas = sigmas
        self._counts: dict[str, Deque[int]] = {}

    def _is_anomalous(self, name: str, count: int) -> bool:
        history = self._counts.get(name)
        if history is None or len(history) < self._min_history:
            return True  # no baseline: let downstream rules decide
        values = np.asarray(history, dtype=float)
        center = float(np.median(values))
        mad = float(np.median(np.abs(values - center)))
        # Counting noise floor: even a perfectly flat history has
        # Poisson jitter of roughly sqrt(center), so small deviations
        # over a flat baseline are still ambient.
        sigma = max(1.4826 * mad, np.sqrt(max(center, 1.0)) / 2.0)
        return abs(count - center) > self._sigmas * sigma

    def filter_window(self, events: list[Event]) -> list[Event]:
        """One window's events; returns those whose trend is anomalous."""
        by_name: dict[str, list[Event]] = {}
        for event in events:
            by_name.setdefault(event.name, []).append(event)
        kept: list[Event] = []
        for name, group in by_name.items():
            if self._is_anomalous(name, len(group)):
                kept.extend(group)
        # Update histories for every known or seen name (absence = 0).
        for name in set(by_name) | set(self._counts):
            history = self._counts.setdefault(
                name, deque(maxlen=self._history_len)
            )
            history.append(len(by_name.get(name, [])))
        kept.sort(key=lambda e: (e.time, e.target, e.name))
        return kept

    def baseline(self) -> Mapping[str, float]:
        """Current per-event median daily volume (for inspection)."""
        return {
            name: float(np.median(list(history)))
            for name, history in self._counts.items()
            if history
        }

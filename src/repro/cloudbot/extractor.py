"""Event Extractor: multi-modal raw data → unified events (Section II-C).

Three extraction families, mirroring the paper:

* **Expert rules** — threshold rules on metrics and regex rules on
  logs, manually formulated with high precision (the Fig. 1
  ``read_latency`` spike → ``slow_io`` and ``eth0 NIC Link is Down`` →
  ``nic_flapping`` transitions);
* **Statistic-based** — BacktrackSTL residuals fed into EVT (SPOT) to
  flag anomalies in metric series without a hand-set threshold;
* **Learned** — any model exposing ``predict_events`` (see
  :mod:`repro.cloudbot.predictor`) can be plugged in for hard problems
  like failure prediction.

Extraction is the complexity-reduction step: hundreds of TB of raw
data become GBs of interpretable events.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from repro.analytics.evt import Spot
from repro.analytics.stl import BacktrackStl
from repro.core.events import Event, Severity
from repro.storage.logstore import LogStore
from repro.telemetry.logs import LogLine
from repro.telemetry.metrics import MetricSample


@dataclass(frozen=True, slots=True)
class MetricThresholdRule:
    """Expert rule: emit an event when a metric crosses a threshold.

    ``direction`` is ``"above"`` or ``"below"``.  ``level_by_value``
    optionally maps sample values to severities — the paper notes that
    events with identical names may carry different levels depending on
    target conditions (Table II).
    """

    metric: str
    threshold: float
    event_name: str
    direction: str = "above"
    level: Severity = Severity.CRITICAL
    expire_interval: float = 600.0
    level_by_value: Callable[[float], Severity] | None = None

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(f"direction must be above/below, got {self.direction}")

    def triggered(self, value: float) -> bool:
        """Whether a sample value crosses the threshold."""
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold

    def extract(self, sample: MetricSample) -> Event | None:
        """Event for one sample, or ``None``."""
        if sample.metric != self.metric or not self.triggered(sample.value):
            return None
        level = self.level
        if self.level_by_value is not None:
            level = self.level_by_value(sample.value)
        return Event(
            name=self.event_name, time=sample.time, target=sample.target,
            expire_interval=self.expire_interval, level=level,
            attributes={"metric": self.metric, "value": sample.value},
        )


@dataclass(frozen=True, slots=True)
class LogRegexRule:
    """Expert rule: regex on a log line → event (Fig. 1)."""

    pattern: str
    event_name: str
    level: Severity = Severity.CRITICAL
    expire_interval: float = 600.0
    _compiled: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_compiled", re.compile(self.pattern))

    def extract(self, line: LogLine) -> Event | None:
        """Event for one log line, or ``None`` when it doesn't match."""
        if self._compiled.search(line.line) is None:
            return None
        return Event(
            name=self.event_name, time=line.time, target=line.target,
            expire_interval=self.expire_interval, level=self.level,
            attributes={"log": line.line},
        )


class StatisticalMetricExtractor:
    """STL + EVT anomaly extraction on one metric (Section II-C).

    The series is decomposed with :class:`BacktrackStl`; residuals from
    a calibration prefix fit a SPOT detector whose alerts become
    events.  This catches anomalies an expert threshold would miss
    (e.g. a latency regime change below the hard threshold).
    """

    def __init__(self, metric: str, event_name: str, *, period: int,
                 calibration: int = 200, q: float = 1e-4,
                 level: Severity = Severity.WARNING,
                 expire_interval: float = 600.0) -> None:
        if calibration < 10:
            raise ValueError("calibration must be >= 10 samples")
        self.metric = metric
        self.event_name = event_name
        self._period = period
        self._calibration = calibration
        self._q = q
        self._level = level
        self._expire_interval = expire_interval

    def extract_series(self, target: str, times: Sequence[float],
                       values: Sequence[float]) -> list[Event]:
        """Events for one target's full series of this metric."""
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        if len(values) <= self._calibration:
            return []
        stl = BacktrackStl(period=self._period)
        residuals = stl.decompose(np.asarray(values, dtype=float)).residual
        head = np.abs(residuals[: self._calibration])
        if np.ptp(head) == 0.0:
            return []
        spot = Spot(q=self._q, level=0.98).fit(head)
        events: list[Event] = []
        for index in range(self._calibration, len(values)):
            alert = spot.step(float(abs(residuals[index])), index)
            if alert is not None:
                events.append(
                    Event(
                        name=self.event_name, time=float(times[index]),
                        target=target, expire_interval=self._expire_interval,
                        level=self._level,
                        attributes={"metric": self.metric,
                                    "residual": float(residuals[index])},
                    )
                )
        return events


class LearnedExtractor(Protocol):
    """Anything that can turn collected data into predicted events."""

    def predict_events(self, samples: Sequence[MetricSample]) -> list[Event]:
        """Predicted events from a window of metric samples."""
        ...


class EventExtractor:
    """The full extractor: expert + statistical + learned sources."""

    def __init__(self, *,
                 metric_rules: Sequence[MetricThresholdRule] = (),
                 log_rules: Sequence[LogRegexRule] = (),
                 statistical: Sequence[StatisticalMetricExtractor] = (),
                 learned: Sequence[LearnedExtractor] = ()) -> None:
        self._metric_rules = tuple(metric_rules)
        self._log_rules = tuple(log_rules)
        self._statistical = tuple(statistical)
        self._learned = tuple(learned)

    def extract_from_metrics(self, samples: Iterable[MetricSample]) -> list[Event]:
        """Expert threshold events from metric samples."""
        events = []
        for sample in samples:
            for rule in self._metric_rules:
                event = rule.extract(sample)
                if event is not None:
                    events.append(event)
        return events

    def extract_from_logs(self, lines: Iterable[LogLine]) -> list[Event]:
        """Expert regex events from log lines; non-matching lines drop."""
        events = []
        for line in lines:
            for rule in self._log_rules:
                event = rule.extract(line)
                if event is not None:
                    events.append(event)
        return events

    def extract_from_log_store(self, store: LogStore, start: float,
                               end: float) -> list[Event]:
        """Expert regex events straight from an SLS-like log store.

        Streams the store's time-range query (entry by entry — no
        materialized window list on either side) through the log rules,
        so extraction over a fleet-scale window holds only the matched
        events.  Entries are adapted lazily; non-log entries (no
        ``line`` field) are skipped.
        """
        entries = store.query(start, end)
        lines = (
            LogLine(time=entry.time, target=entry.get("target", ""),
                    line=entry.get("line"))
            for entry in entries
            if entry.get("line") is not None
        )
        return self.extract_from_logs(lines)

    def extract_statistical(
        self, samples: Sequence[MetricSample]
    ) -> list[Event]:
        """Statistical (STL+EVT) events, grouped per target/metric."""
        grouped: dict[tuple[str, str], list[MetricSample]] = {}
        for sample in samples:
            grouped.setdefault((sample.target, sample.metric), []).append(sample)
        events: list[Event] = []
        for extractor in self._statistical:
            for (target, metric), group in grouped.items():
                if metric != extractor.metric:
                    continue
                group.sort(key=lambda s: s.time)
                events.extend(
                    extractor.extract_series(
                        target,
                        [s.time for s in group],
                        [s.value for s in group],
                    )
                )
        return events

    def extract_learned(self, samples: Sequence[MetricSample]) -> list[Event]:
        """Events predicted by learned models."""
        events = []
        for model in self._learned:
            events.extend(model.predict_events(samples))
        return events

    def extract_all(self, *, metrics: Sequence[MetricSample] = (),
                    logs: Sequence[LogLine] = ()) -> list[Event]:
        """Run every extraction family and return all events, sorted."""
        events = (
            self.extract_from_metrics(metrics)
            + self.extract_from_logs(logs)
            + self.extract_statistical(metrics)
            + self.extract_learned(metrics)
        )
        events.sort(key=lambda e: (e.time, e.target, e.name))
        return events


def default_metric_rules() -> list[MetricThresholdRule]:
    """The expert metric rules used throughout the examples.

    Thresholds sit well above the healthy ranges of
    :data:`repro.telemetry.metrics.DEFAULT_SPECS`.
    """
    from repro.telemetry import metrics as m

    def latency_level(value: float) -> Severity:
        return Severity.FATAL if value > 100.0 else Severity.CRITICAL

    return [
        MetricThresholdRule(m.READ_LATENCY, 10.0, "slow_io",
                            level_by_value=latency_level),
        MetricThresholdRule(m.PACKET_LOSS_RATE, 0.01, "packet_loss",
                            level=Severity.WARNING),
        MetricThresholdRule(m.CPU_STEAL, 0.10, "vcpu_high"),
        MetricThresholdRule(m.HEARTBEAT, 0.5, "vm_down",
                            direction="below", level=Severity.FATAL),
        MetricThresholdRule(m.CPU_FREQ, 2.0, "cpu_freq_capped",
                            direction="below", level=Severity.WARNING),
    ]


def default_log_rules() -> list[LogRegexRule]:
    """The expert log rules used throughout the examples (Fig. 1)."""
    return [
        LogRegexRule(r"NIC Link is Down", "nic_flapping"),
        LogRegexRule(r"guest panicked", "vm_down", level=Severity.FATAL),
        LogRegexRule(r"soft lockup", "vm_hang", level=Severity.FATAL),
        LogRegexRule(r"Machine Check Exception", "nc_down",
                     level=Severity.FATAL),
        LogRegexRule(r"GPU has fallen off the bus", "gpu_drop",
                     level=Severity.FATAL),
        LogRegexRule(r"blackhole route added", "ddos_blackhole_add",
                     level=Severity.FATAL),
        LogRegexRule(r"blackhole route removed", "ddos_blackhole_del",
                     level=Severity.INFO),
        LogRegexRule(r"authentication failed", "api_error"),
        LogRegexRule(r"login handler timeout", "console_unreachable"),
    ]

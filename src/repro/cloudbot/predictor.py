"""Learned failure prediction (deep-learning event source stand-in).

The paper uses neural predictors (TAAT/MISP, Section II-C) to emit
machine-at-risk events such as the performance events behind the
``nc_down_prediction`` rule of Case 8.  We stand in with a pure-numpy
logistic-regression model over windowed NC health features — the same
interface (telemetry window in, predicted events out) with tunable
precision/recall, which is all the downstream pipeline depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.events import Event, Severity
from repro.telemetry.metrics import MetricSample

#: Feature order used by :func:`featurize_window`.
FEATURES = ("mean", "std", "max", "last", "slope")


def featurize_window(values: Sequence[float]) -> np.ndarray:
    """Summary features of one metric window."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot featurize an empty window")
    index = np.arange(data.size, dtype=float)
    if data.size > 1:
        slope = float(np.polyfit(index, data, 1)[0])
    else:
        slope = 0.0
    return np.array([
        float(data.mean()), float(data.std()), float(data.max()),
        float(data[-1]), slope,
    ])


@dataclass
class TrainingReport:
    """Fit diagnostics."""

    epochs: int
    final_loss: float
    accuracy: float


class LogisticFailurePredictor:
    """L2-regularized logistic regression trained with full-batch GD."""

    def __init__(self, *, learning_rate: float = 0.5, epochs: int = 300,
                 l2: float = 1e-3, threshold: float = 0.5,
                 seed: int = 0) -> None:
        if not 0 < threshold < 1:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self._learning_rate = learning_rate
        self._epochs = epochs
        self._l2 = l2
        self.threshold = threshold
        self._rng = np.random.default_rng(seed)
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._weights is not None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> TrainingReport:
        """Train on a feature matrix and 0/1 labels."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"bad shapes: features {x.shape}, labels {y.shape}"
            )
        if x.shape[0] < 2:
            raise ValueError("need at least 2 training rows")
        self._mean = x.mean(axis=0)
        self._scale = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
        z = (x - self._mean) / self._scale
        n, d = z.shape
        self._weights = self._rng.normal(0.0, 0.01, d)
        self._bias = 0.0
        loss = float("inf")
        for _ in range(self._epochs):
            p = self._sigmoid(z @ self._weights + self._bias)
            gradient_w = z.T @ (p - y) / n + self._l2 * self._weights
            gradient_b = float((p - y).mean())
            self._weights -= self._learning_rate * gradient_w
            self._bias -= self._learning_rate * gradient_b
            eps = 1e-12
            loss = float(
                -(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)).mean()
            )
        predictions = self.predict_proba(x) > self.threshold
        accuracy = float((predictions == (y > 0.5)).mean())
        return TrainingReport(epochs=self._epochs, final_loss=loss,
                              accuracy=accuracy)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Failure probability per row."""
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        x = np.asarray(features, dtype=float)
        z = (x - self._mean) / self._scale
        return self._sigmoid(z @ self._weights + self._bias)

    def predict_events(self, samples: Sequence[MetricSample]) -> list[Event]:
        """``nc_down_prediction`` events for at-risk targets.

        Samples are grouped per target (all metrics pooled into one
        window, sorted by time); a window whose failure probability
        clears the threshold produces one prediction event stamped with
        the window's last timestamp.
        """
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        grouped: dict[str, list[MetricSample]] = {}
        for sample in samples:
            grouped.setdefault(sample.target, []).append(sample)
        events: list[Event] = []
        for target, group in sorted(grouped.items()):
            group.sort(key=lambda s: s.time)
            features = featurize_window([s.value for s in group])
            probability = float(self.predict_proba(features[None, :])[0])
            if probability > self.threshold:
                events.append(
                    Event(
                        name="nc_down_prediction",
                        time=group[-1].time,
                        target=target,
                        expire_interval=6 * 3600.0,
                        level=Severity.CRITICAL,
                        attributes={"probability": probability},
                    )
                )
        return events

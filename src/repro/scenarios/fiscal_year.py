"""Fig. 6 scenario: the FY2024 stability improvement trend.

During Fiscal Year 2024 (April 2023 – March 2024) the three
sub-metrics dropped by roughly 40% (Unavailability), 80%
(Performance), and 35% (Control-Plane), with Performance falling the
most because its governance work was early-stage.  We model the year
as twelve months whose underlying fault rates decline on per-category
improvement schedules, simulate one representative day per month, and
return the smoothed monthly CDI curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.events import EventCategory, default_catalog
from repro.core.indicator import CdiReport
from repro.scenarios.common import (
    default_weights,
    fleet_cdi,
    full_day_services,
    periods_by_vm,
)
from repro.telemetry.faults import FAULT_CATEGORY, FaultInjector, baseline_rates
from repro.telemetry.topology import build_fleet

DAY = 86400.0

#: End-of-year fault-rate multipliers per category (start of year = 1.0).
FY2024_IMPROVEMENT = {
    EventCategory.UNAVAILABILITY: 0.60,   # -40%
    EventCategory.PERFORMANCE: 0.20,      # -80%
    EventCategory.CONTROL_PLANE: 0.65,    # -35%
}

MONTHS = ("Apr", "May", "Jun", "Jul", "Aug", "Sep",
          "Oct", "Nov", "Dec", "Jan", "Feb", "Mar")


@dataclass(frozen=True, slots=True)
class MonthlyCdi:
    """One month's fleet CDI."""

    month: str
    report: CdiReport


def _category_scale(category: EventCategory, month_index: int,
                    months: int) -> float:
    """Linear interpolation from 1.0 to the end-of-year multiplier."""
    final = FY2024_IMPROVEMENT[category]
    fraction = month_index / (months - 1) if months > 1 else 1.0
    return 1.0 + (final - 1.0) * fraction


def simulate_fiscal_year(*, vm_count: int = 200, seed: int = 0,
                         months: int = 12) -> list[MonthlyCdi]:
    """Monthly fleet CDI across the improving fiscal year."""
    if months < 2:
        raise ValueError(f"months must be >= 2, got {months}")
    fleet = build_fleet(seed=seed, regions=1, azs_per_region=2,
                        clusters_per_az=2, ncs_per_cluster=4,
                        vms_per_nc=max(1, vm_count // 16))
    vm_ids = sorted(fleet.vms)
    catalog = default_catalog()
    weights = default_weights()
    # Per-category volume boosts keep monthly event counts dense enough
    # that Poisson noise does not swamp the year-long trend (the rare
    # unavailability events especially need this at simulated scale).
    volume_boost = {
        EventCategory.UNAVAILABILITY: 60.0,
        EventCategory.PERFORMANCE: 8.0,
        EventCategory.CONTROL_PLANE: 40.0,
    }
    curve: list[MonthlyCdi] = []
    for month_index in range(months):
        rates = []
        for rate in baseline_rates():
            category = FAULT_CATEGORY[rate.kind]
            scale = (
                _category_scale(category, month_index, months)
                * volume_boost[category]
            )
            rates.append(type(rate)(rate.kind,
                                    rate.per_target_per_day * scale,
                                    rate.mean_duration, rate.duration_sigma))
        injector = FaultInjector(rates, seed=seed * 1000 + month_index)
        faults = injector.sample(vm_ids, 0.0, DAY)
        vm_periods = periods_by_vm(faults, catalog)
        report = fleet_cdi(vm_periods, full_day_services(vm_ids),
                           catalog=catalog, weights=weights)
        month = MONTHS[month_index % len(MONTHS)]
        curve.append(MonthlyCdi(month=month, report=report))
    return curve


def smoothed(curve: Sequence[MonthlyCdi], window: int = 3
             ) -> list[MonthlyCdi]:
    """Centered moving average, as in the paper's "smoothed" Fig. 6."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    half = window // 2
    result = []
    for index, point in enumerate(curve):
        lo = max(0, index - half)
        hi = min(len(curve), index + half + 1)
        chunk = curve[lo:hi]
        count = len(chunk)
        result.append(MonthlyCdi(
            month=point.month,
            report=CdiReport(
                unavailability=sum(c.report.unavailability for c in chunk) / count,
                performance=sum(c.report.performance for c in chunk) / count,
                control_plane=sum(c.report.control_plane for c in chunk) / count,
                service_time=point.report.service_time,
            ),
        ))
    return result


def year_over_year_reduction(curve: Sequence[MonthlyCdi], edge: int = 3
                             ) -> dict[EventCategory, float]:
    """Fractional reduction from the start to the end of the year.

    Compares the mean of the first ``edge`` months against the mean of
    the last ``edge`` months (averaging damps Poisson noise in the
    monthly samples).  The paper's headline numbers are roughly
    0.40 / 0.80 / 0.35; with linear improvement schedules the
    edge-mean estimate lands slightly below the point-to-point figure.
    """
    if not 1 <= edge <= len(curve) // 2:
        raise ValueError(f"edge must be in 1..{len(curve) // 2}, got {edge}")
    head = curve[:edge]
    tail = curve[-edge:]

    def reduction(attr: str) -> float:
        start = sum(getattr(m.report, attr) for m in head) / edge
        end = sum(getattr(m.report, attr) for m in tail) / edge
        if start <= 0:
            return 0.0
        return 1.0 - end / start

    return {
        EventCategory.UNAVAILABILITY: reduction("unavailability"),
        EventCategory.PERFORMANCE: reduction("performance"),
        EventCategory.CONTROL_PLANE: reduction("control_plane"),
    }

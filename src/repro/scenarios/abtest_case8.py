"""Case 8 scenario: A/B test of nc_down_prediction actions (Fig. 11 / Table V).

The rule ``nc_down_prediction`` forecasts NC failures; on a hit, every
VM on the NC is live-migrated — but three candidate actions differ in
migration parameters and sequencing.  The paper's three-month A/B
test found:

* no significant differences in Unavailability or Control-Plane CDI
  (omnibus p = 0.47 and 0.89);
* a strongly significant difference in Performance CDI (p ≈ 0), with
  all three pairwise comparisons significant and normalized mean
  Performance Indicators 0.40 / 0.08 / 0.42 → Action B wins.

We regenerate that experiment: VM hits are assigned to actions by the
experiment's distribution, and each arm's post-action CDI reports are
drawn from distributions with exactly those relationships.
"""

from __future__ import annotations

import numpy as np

from repro.abtest.experiment import AbExperiment, Variant
from repro.core.indicator import CdiReport

#: Normalized mean Performance Indicators from the paper (Fig. 11).
PAPER_MEANS = {"A": 0.40, "B": 0.08, "C": 0.42}


def build_case8_experiment(*, hits_per_variant: int = 120,
                           seed: int = 0,
                           performance_sigma: float = 0.10
                           ) -> AbExperiment:
    """The populated Case 8 experiment, ready for analysis.

    * Performance CDI per arm ~ clipped Normal(mean_arm, sigma);
    * Unavailability and Control-Plane CDI are drawn from the *same*
      distribution for every arm — the migrations all succeed in
      averting the failure, so those sub-metrics cannot distinguish
      the arms (matching Table V's p = 0.47 / 0.89).
    """
    experiment = AbExperiment(
        rule_name="nc_down_prediction",
        variants=[
            Variant("A", 1 / 3, "migrate fastest-first, aggressive params"),
            Variant("B", 1 / 3, "migrate low-load-first, throttled params"),
            Variant("C", 1 / 3, "migrate sequentially, default params"),
        ],
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    vm_counter = 0
    for variant in experiment.variants:
        mean = PAPER_MEANS[variant.name]
        for _ in range(hits_per_variant):
            vm = f"vm-{vm_counter:05d}"
            vm_counter += 1
            performance = float(
                np.clip(rng.normal(mean, performance_sigma), 0.0, 1.0)
            )
            unavailability = float(
                np.clip(rng.normal(0.02, 0.01), 0.0, 1.0)
            )
            control_plane = float(
                np.clip(rng.normal(0.05, 0.02), 0.0, 1.0)
            )
            experiment.record(
                vm, variant.name,
                CdiReport(
                    unavailability=unavailability,
                    performance=performance,
                    control_plane=control_plane,
                    service_time=2 * 86400.0,  # two days post-action
                ),
            )
    return experiment

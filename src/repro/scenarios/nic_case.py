"""Example 1 / Fig. 1 scenario: the NIC incident, end to end.

A NIC fault on one NC degrades a VM's cloud-disk IO.  The full
CloudBot loop runs:

1. the Data Collector gathers metrics and logs for the affected
   targets;
2. the Event Extractor turns the ``read_latency`` spike into a
   ``slow_io`` event and the ``eth0 NIC Link is Down`` log line into a
   ``nic_flapping`` event (discarding benign lines);
3. the Rule Engine matches ``nic_error_cause_slow_io`` (and correctly
   does *not* match ``nic_error_cause_vm_hang``);
4. the Operation Platform live-migrates the VM, files an IDC repair
   ticket, and locks the NC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloudbot.actions import Action, ActionType
from repro.cloudbot.collector import DataCollector, RawDataBundle
from repro.cloudbot.extractor import (
    EventExtractor,
    default_log_rules,
    default_metric_rules,
)
from repro.cloudbot.platform import ExecutionRecord, OperationPlatform
from repro.cloudbot.rules import OperationRule, RuleEngine, RuleMatch
from repro.core.events import Event
from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.topology import Fleet, build_fleet


@dataclass(frozen=True, slots=True)
class NicIncidentOutcome:
    """Everything the workflow produced, for inspection/assertions."""

    fleet: Fleet
    vm: str
    nc: str
    bundle: RawDataBundle
    events: list[Event]
    matches: list[RuleMatch]
    records: list[ExecutionRecord]
    platform: OperationPlatform


def nic_rules() -> list[OperationRule]:
    """The two Fig. 1 rules."""
    return [
        OperationRule(
            name="nic_error_cause_slow_io",
            expression="slow_io AND nic_flapping",
            actions=(
                Action(ActionType.LIVE_MIGRATION, target="", priority=10),
                Action(ActionType.REPAIR_REQUEST, target="", priority=5),
                Action(ActionType.NC_LOCK, target="", priority=5),
            ),
            description="NIC fault degrading cloud-disk IO",
        ),
        OperationRule(
            name="nic_error_cause_vm_hang",
            expression="nic_flapping AND vm_hang",
            actions=(
                Action(ActionType.COLD_MIGRATION, target="", priority=10),
            ),
            description="NIC fault hanging the VM entirely",
        ),
    ]


def run_nic_incident(*, seed: int = 0) -> NicIncidentOutcome:
    """Run the complete Fig. 1 workflow on a synthetic fleet."""
    fleet = build_fleet(seed=seed, regions=1, azs_per_region=1,
                        clusters_per_az=1, ncs_per_cluster=4, vms_per_nc=2)
    vm = sorted(fleet.vms)[0]
    nc = fleet.vms[vm].nc_id

    # The NIC flap happens on the NC; the IO degradation shows on the VM.
    incident_time = 12 * 3600.0 + 16 * 60.0  # 12:16, as in Fig. 1
    faults = [
        Fault(FaultKind.NIC_FLAPPING, nc, incident_time, 90.0),
        Fault(FaultKind.SLOW_IO, vm, incident_time + 30.0, 300.0,
              params={"latency_factor": 40.0}),
    ]

    collector = DataCollector(fleet, seed=seed)
    bundle = collector.collect([vm, nc], incident_time - 1800.0,
                               incident_time + 1800.0, faults=faults)

    extractor = EventExtractor(
        metric_rules=default_metric_rules(),
        log_rules=default_log_rules(),
    )
    events = extractor.extract_all(metrics=bundle.metrics, logs=bundle.logs)

    # The NC-level nic_flapping event applies to the VMs it hosts; the
    # production system joins on topology, which we mirror here.
    projected: list[Event] = list(events)
    for event in events:
        if event.target == nc:
            for hosted in fleet.vms_on(nc):
                projected.append(
                    Event(name=event.name, time=event.time,
                          target=hosted.vm_id,
                          expire_interval=event.expire_interval,
                          level=event.level, attributes=event.attributes)
                )

    engine = RuleEngine(nic_rules())
    matches = engine.evaluate(projected, now=incident_time + 120.0)

    platform = OperationPlatform(fleet)
    actions: list[Action] = []
    for match in matches:
        if match.target != vm:
            continue
        for action in match.actions():
            # NC-scoped actions target the host, not the VM.
            if action.type in (ActionType.REPAIR_REQUEST, ActionType.NC_LOCK):
                actions.append(Action(type=action.type, target=nc,
                                      priority=action.priority,
                                      params=action.params,
                                      source_rule=action.source_rule))
            else:
                actions.append(action)
    records = platform.submit(actions)

    return NicIncidentOutcome(
        fleet=fleet, vm=vm, nc=nc, bundle=bundle, events=events,
        matches=matches, records=records, platform=platform,
    )

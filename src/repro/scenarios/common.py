"""Shared helpers for experiment scenarios.

Scenarios need to go from injected faults to CDI quickly at fleet
scale.  Rendering every fault through raw telemetry and the extractor
is realistic but expensive; since the extractor-recovery path is
validated end-to-end elsewhere (integration tests, the NIC example),
fleet-scale scenarios use the direct fault → event-period shortcut
here.  The shortcut preserves what the experiments measure: event
periods, weights, and the resulting CDI curves.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.events import EventCatalog, Severity, default_catalog
from repro.core.indicator import (
    CdiCalculator,
    CdiReport,
    ServicePeriod,
    aggregate_reports,
)
from repro.core.periods import EventPeriod
from repro.core.weights import WeightConfig, build_weight_config
from repro.telemetry.faults import Fault, FaultKind

#: Event name emitted by each fault kind (the extractor's output
#: vocabulary for that fault).
FAULT_EVENT_NAME: Mapping[FaultKind, str] = {
    FaultKind.VM_DOWN: "vm_down",
    FaultKind.VM_HANG: "vm_hang",
    FaultKind.NC_DOWN: "nc_down",
    FaultKind.DDOS_BLACKHOLE: "ddos_blackhole",
    FaultKind.SLOW_IO: "slow_io",
    FaultKind.PACKET_LOSS: "packet_loss",
    FaultKind.VCPU_CONTENTION: "vcpu_high",
    FaultKind.NIC_FLAPPING: "nic_flapping",
    FaultKind.GPU_DROP: "gpu_drop",
    FaultKind.CPU_FREQ_CAPPED: "cpu_freq_capped",
    FaultKind.ALLOCATION_BUG: "vm_allocation_failed",
    FaultKind.POWER_SENSOR_ZERO: "inspect_cpu_power_tdp",
    FaultKind.CONTROL_API_OUTAGE: "api_error",
    FaultKind.CONSOLE_OUTAGE: "console_unreachable",
}


def fault_to_period(fault: Fault,
                    catalog: EventCatalog) -> EventPeriod:
    """The event period a fault would be extracted as."""
    name = FAULT_EVENT_NAME[fault.kind]
    spec = catalog.get(name)
    return EventPeriod(
        name=name, target=fault.target,
        start=fault.start, end=fault.end,
        level=spec.default_level,
    )


def periods_by_vm(faults: Iterable[Fault],
                  catalog: EventCatalog) -> dict[str, list[EventPeriod]]:
    """Group fault-derived event periods per target VM."""
    result: dict[str, list[EventPeriod]] = {}
    for fault in faults:
        period = fault_to_period(fault, catalog)
        result.setdefault(period.target, []).append(period)
    return result


def default_weights(seed_ticket_counts: Mapping[str, int] | None = None
                    ) -> WeightConfig:
    """A weight configuration with plausible ticket-derived levels."""
    counts = dict(seed_ticket_counts or {
        "slow_io": 420, "packet_loss": 160, "vcpu_high": 310,
        "nic_flapping": 90, "gpu_drop": 380, "cpu_freq_capped": 60,
        "vm_allocation_failed": 240, "inspect_cpu_power_tdp": 30,
        "api_error": 350, "console_unreachable": 200,
        "vm_start_failed": 280, "vm_stop_failed": 120,
        "vm_resize_failed": 70, "vm_release_failed": 50,
        "monitoring_lost": 40,
    })
    return build_weight_config(counts, customer_levels=4)


def fleet_cdi(vm_periods: Mapping[str, Sequence[EventPeriod]],
              services: Mapping[str, ServicePeriod],
              *, catalog: EventCatalog | None = None,
              weights: WeightConfig | None = None) -> CdiReport:
    """Fleet CDI report from per-VM periods and service windows.

    VMs present in ``services`` but absent from ``vm_periods``
    contribute zero-damage service time (Formula 4 dilution).
    """
    catalog = catalog or default_catalog()
    weights = weights or default_weights()
    calculator = CdiCalculator(catalog, weights)
    reports = []
    for vm, service in services.items():
        periods = vm_periods.get(vm, [])
        reports.append(calculator.vm_report(periods, service))
    return aggregate_reports(reports)


def full_day_services(vm_ids: Iterable[str],
                      day_seconds: float = 86400.0
                      ) -> dict[str, ServicePeriod]:
    """Every VM in service for one whole day starting at t = 0."""
    return {vm: ServicePeriod(0.0, day_seconds) for vm in vm_ids}


def severity_override(period: EventPeriod, level: Severity) -> EventPeriod:
    """Copy an event period with a different severity."""
    return EventPeriod(name=period.name, target=period.target,
                       start=period.start, end=period.end, level=level)

"""Case 2 scenario: the November 12, 2023 AccessKey incident.

Faulty logic in the AccessKey system produced an incomplete whitelist,
failing authentication for valid requests.  On the data plane only
some encrypted-disk VMs became unavailable while most servers kept
running; the control plane fared far worse — monitoring metrics lost,
console logins broken, management API calls failing — during evening
business peaks.

The scenario rebuilds that fault pattern and shows why it matters for
metric design: Downtime Percentage barely moves (few VMs down), while
the Control-Plane Indicator captures a fleet-wide outage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import downtime_percentage
from repro.core.events import default_catalog
from repro.core.indicator import CdiReport, aggregate
from repro.scenarios.common import (
    default_weights,
    fleet_cdi,
    full_day_services,
    periods_by_vm,
)
from repro.telemetry.faults import Fault, FaultInjector, FaultKind, baseline_rates
from repro.telemetry.topology import build_fleet

DAY = 86400.0

#: Share of VMs using encrypted cloud disks (the data-plane victims).
ENCRYPTED_DISK_FRACTION = 0.04

#: The incident ran through the evening business peak (~17:30-21:00).
INCIDENT_START = 17.5 * 3600.0
INCIDENT_DURATION = 3.5 * 3600.0


@dataclass(frozen=True, slots=True)
class AccessKeyIncidentResult:
    """Metrics for the incident day vs an ordinary day."""

    incident_cdi: CdiReport
    baseline_cdi: CdiReport
    incident_dp: float
    baseline_dp: float
    affected_data_plane_vms: int
    total_vms: int


def simulate_access_key_incident(*, vm_count: int = 250,
                                 seed: int = 0) -> AccessKeyIncidentResult:
    """Simulate the incident day and a baseline day on the same fleet."""
    fleet = build_fleet(seed=seed, regions=1, azs_per_region=2,
                        clusters_per_az=2, ncs_per_cluster=4,
                        vms_per_nc=max(1, vm_count // 16))
    vm_ids = sorted(fleet.vms)
    catalog = default_catalog()
    weights = default_weights()
    services = full_day_services(vm_ids)

    def day_metrics(faults):
        vm_periods = periods_by_vm(faults, catalog)
        cdi = fleet_cdi(vm_periods, services, catalog=catalog,
                        weights=weights)
        dp = aggregate(
            (service.duration,
             downtime_percentage(vm_periods.get(vm, []), service, catalog))
            for vm, service in services.items()
        )
        return cdi, dp

    background = FaultInjector(baseline_rates(scale=3.0), seed=seed)
    baseline_cdi, baseline_dp = day_metrics(
        background.sample(vm_ids, 0.0, DAY)
    )

    encrypted_count = max(1, int(len(vm_ids) * ENCRYPTED_DISK_FRACTION))
    encrypted_vms = vm_ids[:encrypted_count]
    incident_faults = list(
        FaultInjector(baseline_rates(scale=3.0), seed=seed + 1)
        .sample(vm_ids, 0.0, DAY)
    )
    # Data plane: encrypted-disk VMs lose their disks -> unavailable.
    incident_faults += [
        Fault(FaultKind.VM_DOWN, vm, INCIDENT_START, INCIDENT_DURATION)
        for vm in encrypted_vms
    ]
    # Control plane: EVERY VM loses monitoring, console, and API
    # control for the duration.
    for kind in (FaultKind.CONTROL_API_OUTAGE, FaultKind.CONSOLE_OUTAGE):
        incident_faults += [
            Fault(kind, vm, INCIDENT_START, INCIDENT_DURATION)
            for vm in vm_ids
        ]
    incident_cdi, incident_dp = day_metrics(incident_faults)

    return AccessKeyIncidentResult(
        incident_cdi=incident_cdi,
        baseline_cdi=baseline_cdi,
        incident_dp=incident_dp,
        baseline_dp=baseline_dp,
        affected_data_plane_vms=encrypted_count,
        total_vms=len(vm_ids),
    )

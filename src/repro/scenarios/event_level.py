"""Fig. 9 scenarios: event-level CDI spike (Case 6) and dip (Case 7).

* **Case 6** — a scheduling-system change corrupts resource data, so
  some VMs are created without their exclusive cores and emit
  ``vm_allocation_failed``; the event-level CDI spikes on day 14 and
  reverts on day 15 after the fix.
* **Case 7** — a power-collection bug reports zero watts, so
  ``inspect_cpu_power_tdp`` events stop firing; the event-level CDI
  *dips* from day 13, bottoms out by day 17, and recovers from day 18.

Both curves are daily Formula 4 aggregates of per-VM event-level CDI
(Algorithm 1 narrowed to one event name).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import default_catalog
from repro.core.indicator import CdiCalculator, ServicePeriod, aggregate
from repro.scenarios.common import default_weights, periods_by_vm
from repro.telemetry.faults import Fault, FaultInjector, FaultKind, FaultRate
from repro.telemetry.topology import build_fleet

DAY = 86400.0


@dataclass(frozen=True, slots=True)
class EventLevelCurves:
    """Daily event-level CDI curves for the two cases (index = day-1)."""

    allocation_failed: list[float]   # Case 6, spikes on spike_day
    power_tdp: list[float]           # Case 7, dips over dip window
    spike_day: int
    dip_start: int
    dip_end: int


def _daily_event_cdi(vm_ids: list[str], faults: list[Fault],
                     event_name: str, calculator: CdiCalculator) -> float:
    vm_periods = periods_by_vm(faults, calculator.catalog)
    service = ServicePeriod(0.0, DAY)
    return aggregate(
        (service.duration,
         calculator.event_level_cdi(vm_periods.get(vm, []), service,
                                    event_name))
        for vm in vm_ids
    )


def simulate_event_level_curves(
    *, days: int = 30, spike_day: int = 14, dip_start: int = 13,
    dip_end: int = 17, vm_count: int = 120, seed: int = 0,
) -> EventLevelCurves:
    """Simulate both Fig. 9 curves over ``days`` days."""
    if not 1 <= spike_day <= days or not 1 <= dip_start <= dip_end <= days:
        raise ValueError("spike/dip windows must lie within the simulation")
    fleet = build_fleet(seed=seed, regions=1, azs_per_region=1,
                        clusters_per_az=2, ncs_per_cluster=4,
                        vms_per_nc=max(1, vm_count // 8))
    vm_ids = sorted(fleet.vms)
    calculator = CdiCalculator(default_catalog(), default_weights())
    rng = np.random.default_rng(seed)

    allocation_curve: list[float] = []
    power_curve: list[float] = []
    for day in range(1, days + 1):
        day_seed = seed * 1000 + day

        # Case 6: small allocation-failure background; on the spike day
        # the scheduler bug hits a large batch of VMs.
        rate = 0.08 if day != spike_day else 3.0
        alloc_injector = FaultInjector(
            [FaultRate(FaultKind.ALLOCATION_BUG, rate, 7200.0)],
            seed=day_seed,
        )
        alloc_faults = alloc_injector.sample(vm_ids, 0.0, DAY)
        allocation_curve.append(
            _daily_event_cdi(vm_ids, alloc_faults, "vm_allocation_failed",
                             calculator)
        )

        # Case 7: steady TDP-inspection events; during the sensor bug
        # the collected power is zero so the events vanish.
        if dip_start <= day <= dip_end:
            # Ramp down into the bug window (decline starts at dip_start,
            # "dropped to a very low level" by dip_end).
            progress = (day - dip_start + 1) / (dip_end - dip_start + 1)
            scale = max(0.02, 1.0 - progress * 1.2)
        else:
            scale = 1.0
        tdp_rate = 1.2 * scale * (1.0 + 0.1 * float(rng.normal()))
        tdp_injector = FaultInjector(
            [FaultRate(FaultKind.POWER_SENSOR_ZERO, max(0.0, tdp_rate),
                       3600.0)],
            seed=day_seed + 7,
        )
        tdp_faults = tdp_injector.sample(vm_ids, 0.0, DAY)
        power_curve.append(
            _daily_event_cdi(vm_ids, tdp_faults, "inspect_cpu_power_tdp",
                             calculator)
        )

    return EventLevelCurves(
        allocation_failed=allocation_curve,
        power_tdp=power_curve,
        spike_day=spike_day, dip_start=dip_start, dip_end=dip_end,
    )

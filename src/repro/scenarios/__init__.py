"""Reusable incident/case scenario builders for the paper's experiments.

* :mod:`repro.scenarios.incidents` — Fig. 5 (three incidents vs daily).
* :mod:`repro.scenarios.fiscal_year` — Fig. 6 (FY2024 trend).
* :mod:`repro.scenarios.architecture` — Fig. 8 / Case 5.
* :mod:`repro.scenarios.event_level` — Fig. 9 / Cases 6 & 7.
* :mod:`repro.scenarios.abtest_case8` — Fig. 11 / Table V / Case 8.
* :mod:`repro.scenarios.nic_case` — Fig. 1 / Example 1 workflow.
* :mod:`repro.scenarios.outages` — BSODiag-style outage family for
  the AIR-vs-CDI faceoff.
* :mod:`repro.scenarios.faceoff` — the head-to-head KPI study and its
  byte-deterministic artifact.
"""

from repro.scenarios.abtest_case8 import PAPER_MEANS, build_case8_experiment
from repro.scenarios.access_key import (
    AccessKeyIncidentResult,
    simulate_access_key_incident,
)
from repro.scenarios.architecture import (
    ArchitectureDay,
    divergence_ratio,
    simulate_architecture_comparison,
)
from repro.scenarios.common import (
    FAULT_EVENT_NAME,
    default_weights,
    fault_to_period,
    fleet_cdi,
    full_day_services,
    periods_by_vm,
)
from repro.scenarios.event_level import (
    EventLevelCurves,
    simulate_event_level_curves,
)
from repro.scenarios.fiscal_year import (
    FY2024_IMPROVEMENT,
    MonthlyCdi,
    simulate_fiscal_year,
    smoothed,
    year_over_year_reduction,
)
from repro.scenarios.incidents import (
    IncidentDayMetrics,
    normalize_to_daily,
    simulate_incident_days,
)
from repro.scenarios.faceoff import faceoff_json, run_faceoff
from repro.scenarios.nic_case import (
    NicIncidentOutcome,
    nic_rules,
    run_nic_incident,
)
from repro.scenarios.outages import OutageScenario, outage_family

__all__ = [
    "AccessKeyIncidentResult",
    "ArchitectureDay",
    "simulate_access_key_incident",
    "EventLevelCurves",
    "FAULT_EVENT_NAME",
    "FY2024_IMPROVEMENT",
    "IncidentDayMetrics",
    "MonthlyCdi",
    "NicIncidentOutcome",
    "OutageScenario",
    "PAPER_MEANS",
    "build_case8_experiment",
    "default_weights",
    "divergence_ratio",
    "faceoff_json",
    "fault_to_period",
    "fleet_cdi",
    "full_day_services",
    "nic_rules",
    "normalize_to_daily",
    "outage_family",
    "run_faceoff",
    "periods_by_vm",
    "run_nic_incident",
    "simulate_architecture_comparison",
    "simulate_event_level_curves",
    "simulate_fiscal_year",
    "simulate_incident_days",
    "smoothed",
    "year_over_year_reduction",
]

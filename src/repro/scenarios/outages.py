"""Outage-shaped scenario family for the AIR-vs-CDI faceoff.

BSODiag-style correlated outages: each scenario concentrates one
incident shape on a spatially contiguous slice of the fleet topology
(a cluster, or a batch of NCs inside one cluster), rides on a seeded
background fault mix, and records the injected ground truth a
root-cause localizer is scored against — the same labeled-generation
machinery as :mod:`repro.control.scenario`, aimed at KPI comparison
instead of closed-loop control.

The family deliberately spans the shapes where a frequency KPI
(:mod:`repro.analytics.air`) and a duration-×-severity KPI (CDI)
agree and disagree:

* ``quiet`` — background only; both KPIs must stay flat.
* ``hard-downtime`` — one cluster down six hours; both KPIs spike.
* ``nc-batch-outage`` — two of one cluster's three NCs flap through
  repeated crash/recover cycles (the BSODiag batch-outage shape);
  both KPIs spike, and localization must land on the *cluster*, the
  spatial envelope of the correlated NC failures.
* ``performance-degradation`` — one cluster's cloud disks slow down;
  AIR counts nothing (no unavailability occurred), CDI's performance
  sub-metric spikes.
* ``control-plane-outage`` — one cluster's control API fails; AIR
  counts nothing, CDI's control-plane sub-metric spikes.
* ``brief-but-wide`` — two clusters take many ~2-second interruptions
  (pulsed incidents); AIR explodes while the summed downtime is too
  small to move CDI's unavailability sub-metric.

Every scenario is a pure function of its seed; the faceoff study
(:mod:`repro.scenarios.faceoff`) replays the family through the real
daily CDI job and serializes byte-identically across reruns and
executor backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.faults import FaultKind, FaultRate
from repro.telemetry.fleetgen import InjectedIncident
from repro.telemetry.topology import Fleet, build_fleet

#: Days before the incident day — the KPI baseline and RCA trailing
#: window.  The incident fires on day ``BASELINE_DAYS`` (the run's
#: last day).
BASELINE_DAYS = 7

#: Hours of damage the sustained incidents inflict per VM on the
#: incident day (six hours).
_SUSTAINED_SECONDS = 21600.0


@dataclass(frozen=True, slots=True)
class OutageScenario:
    """One deterministic outage-family member.

    ``expect_air`` / ``expect_cdi`` record the *designed* KPI verdicts
    (does AIR flag? does any CDI sub-metric flag?) and ``rca_scored``
    whether the scenario carries a localizable spatial ground truth —
    the faceoff study asserts its measurements against these
    expectations, and the CI gate pins them.
    """

    name: str
    seed: int
    fleet: Fleet
    rates: tuple[FaultRate, ...]
    incidents: tuple[InjectedIncident, ...]
    description: str
    expect_air: bool
    expect_cdi: bool
    rca_scored: bool
    days: int = BASELINE_DAYS + 1
    day_seconds: float = 86400.0

    def __post_init__(self) -> None:
        if self.days < 2:
            raise ValueError(f"days must be >= 2, got {self.days}")
        if self.day_seconds <= 0:
            raise ValueError(
                f"day_seconds must be > 0, got {self.day_seconds}"
            )
        for incident in self.incidents:
            if not incident.active_on(self.days - 1):
                raise ValueError(
                    f"incident {incident.incident_id} misses the "
                    f"incident day {self.days - 1}"
                )
            unknown = [t for t in incident.targets
                       if t not in self.fleet.vms]
            if unknown:
                raise ValueError(
                    f"incident {incident.incident_id} targets unknown "
                    f"VMs: {unknown[:3]}"
                )

    @property
    def vm_ids(self) -> list[str]:
        """All fleet VM ids, sorted (the canonical iteration order)."""
        return sorted(self.fleet.vms)

    @property
    def incident_day(self) -> int:
        """The day the incidents fire (the run's last day)."""
        return self.days - 1


def _outage_fleet(seed: int) -> Fleet:
    """The family fleet: 2 regions × 2 clusters × 3 NCs × 3 VMs.

    36 VMs across 4 clusters of 9.  Three NCs per cluster make the
    batch-outage shape non-trivial (two of three NCs fail, so the NC
    dimension needs two values where the cluster dimension needs one);
    a single machine model keeps that dimension uninformative so every
    cluster-concentrated incident has exactly one correct localization.
    """
    return build_fleet(
        seed=seed, regions=2, azs_per_region=1, clusters_per_az=2,
        ncs_per_cluster=3, vms_per_nc=3, machine_models=("M1",),
    )


def _background_rates() -> tuple[FaultRate, ...]:
    """Background mix tuned for KPI contrast.

    Unavailability rates sit lower than the control-loop mix so a
    nine-VM hard outage (nine new interruptions) clears a 3× AIR
    baseline ratio — with the control mix's ~7 background
    interruptions/day the *occurrence count* of a six-hour outage
    would drown in background, which is itself a preview of AIR's
    insensitivity.  Performance and control-plane rates keep those
    curves alive for the CDI baselines.
    """
    return (
        FaultRate(FaultKind.VM_DOWN, 0.05, 120.0, 0.2),
        FaultRate(FaultKind.VM_HANG, 0.03, 100.0, 0.2),
        FaultRate(FaultKind.SLOW_IO, 0.40, 110.0, 0.2),
        FaultRate(FaultKind.PACKET_LOSS, 0.30, 90.0, 0.2),
        FaultRate(FaultKind.CONTROL_API_OUTAGE, 0.15, 100.0, 0.2),
        FaultRate(FaultKind.CONSOLE_OUTAGE, 0.10, 80.0, 0.2),
    )


def _cluster_vms(fleet: Fleet, cluster_id: str) -> tuple[str, ...]:
    """Sorted VM ids placed in one cluster."""
    return tuple(sorted(
        vm_id for vm_id in fleet.vms
        if fleet.cluster_of(vm_id).cluster_id == cluster_id
    ))


def _nc_batch_vms(fleet: Fleet, cluster_id: str,
                  ncs: int) -> tuple[str, ...]:
    """Sorted VM ids on the first ``ncs`` NCs of one cluster."""
    by_nc: dict[str, list[str]] = {}
    for vm_id in _cluster_vms(fleet, cluster_id):
        by_nc.setdefault(fleet.vms[vm_id].nc_id, []).append(vm_id)
    batch = sorted(by_nc)[:ncs]
    return tuple(vm for nc in batch for vm in sorted(by_nc[nc]))


def outage_family(seed: int = 0) -> tuple[OutageScenario, ...]:
    """The six-member outage family for one seed.

    Each member is an independent 8-day run (7 baseline days, incident
    on day 7) over the same fleet layout and background mix; only the
    injected incident differs.  See the module docstring for the
    shapes and the expected KPI verdicts.
    """
    fleet = _outage_fleet(seed)
    rates = _background_rates()
    clusters = sorted(fleet.clusters)
    day = BASELINE_DAYS

    def scenario(name: str, incidents: tuple[InjectedIncident, ...],
                 description: str, *, expect_air: bool, expect_cdi: bool,
                 rca_scored: bool) -> OutageScenario:
        return OutageScenario(
            name=name, seed=seed, fleet=fleet, rates=rates,
            incidents=incidents, description=description,
            expect_air=expect_air, expect_cdi=expect_cdi,
            rca_scored=rca_scored,
        )

    return (
        scenario(
            "quiet", (),
            "Background faults only — the null member both KPIs must "
            "stay quiet on.",
            expect_air=False, expect_cdi=False, rca_scored=False,
        ),
        scenario(
            "hard-downtime",
            (InjectedIncident(
                incident_id="out-hard", kind=FaultKind.VM_DOWN,
                targets=_cluster_vms(fleet, clusters[0]),
                onset_day=day, duration_days=1,
                seconds_per_day=_SUSTAINED_SECONDS,
                dimension="cluster", value=clusters[0],
            ),),
            "One cluster's nine VMs crash for six hours — the classic "
            "outage both KPIs agree on.",
            expect_air=True, expect_cdi=True, rca_scored=True,
        ),
        scenario(
            "nc-batch-outage",
            (InjectedIncident(
                incident_id="out-batch", kind=FaultKind.NC_DOWN,
                targets=_nc_batch_vms(fleet, clusters[1], 2),
                onset_day=day, duration_days=1,
                seconds_per_day=_SUSTAINED_SECONDS,
                dimension="cluster", value=clusters[1],
                pulses=3, pulse_interval=10800.0,
            ),),
            "Two of one cluster's three NCs flap through three "
            "crash/recover cycles (BSODiag batch-outage shape); "
            "localization must name the cluster, the spatial envelope "
            "of the correlated NC failures.",
            expect_air=True, expect_cdi=True, rca_scored=True,
        ),
        scenario(
            "performance-degradation",
            (InjectedIncident(
                incident_id="out-perf", kind=FaultKind.SLOW_IO,
                targets=_cluster_vms(fleet, clusters[2]),
                onset_day=day, duration_days=1,
                seconds_per_day=_SUSTAINED_SECONDS,
                dimension="cluster", value=clusters[2],
            ),),
            "One cluster's cloud disks run six hours over the latency "
            "threshold — zero interruptions, so AIR is blind while "
            "CDI's performance sub-metric spikes.",
            expect_air=False, expect_cdi=True, rca_scored=True,
        ),
        scenario(
            "control-plane-outage",
            (InjectedIncident(
                incident_id="out-control",
                kind=FaultKind.CONTROL_API_OUTAGE,
                targets=_cluster_vms(fleet, clusters[3]),
                onset_day=day, duration_days=1,
                seconds_per_day=_SUSTAINED_SECONDS,
                dimension="cluster", value=clusters[3],
            ),),
            "One cluster's control API fails for six hours — running "
            "VMs keep serving, so AIR is blind while CDI's "
            "control-plane sub-metric spikes.",
            expect_air=False, expect_cdi=True, rca_scored=True,
        ),
        scenario(
            "brief-but-wide",
            tuple(
                InjectedIncident(
                    incident_id=f"out-wide-{i}", kind=FaultKind.VM_DOWN,
                    targets=_cluster_vms(fleet, cluster_id),
                    onset_day=day, duration_days=1,
                    seconds_per_day=24.0, pulses=12,
                    pulse_interval=600.0,
                    dimension="cluster", value=cluster_id,
                )
                for i, cluster_id in enumerate(clusters[:2])
            ),
            "Two clusters take twelve two-second interruptions each "
            "(216 occurrences, 24 s total downtime per VM) — AIR "
            "explodes while CDI's unavailability sub-metric barely "
            "moves: frequency without damage.",
            expect_air=True, expect_cdi=False, rca_scored=False,
        ),
    )


def family_names(seed: int = 0) -> list[str]:
    """Scenario names of the family, in artifact order."""
    return [s.name for s in outage_family(seed)]

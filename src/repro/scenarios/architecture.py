"""Fig. 8 / Case 5 scenario: homogeneous vs hybrid deployment.

The architectural transition of Case 5: dedicated and shared VMs move
from separate physical pools (homogeneous) onto shared hosts (hybrid).
An incompatibility between the hybrid architecture and certain
virtualization components *on one machine model* causes CPU contention
when core allocation ranges overlap (Fig. 7d).  The Performance
Indicators of both arms track until **day 13**, when the buggy model's
contention kicks in and the hybrid curve climbs; rollback starts
around day 21 and the curves converge again by **day 28**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import default_catalog
from repro.scenarios.common import (
    default_weights,
    fleet_cdi,
    full_day_services,
    periods_by_vm,
)
from repro.telemetry.faults import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultRate,
    baseline_rates,
)
from repro.telemetry.topology import DeploymentArch, build_fleet

DAY = 86400.0

#: The machine model whose virtualization stack is incompatible with
#: hybrid deployment (Case 5).
BUGGY_MODEL = "M2"


@dataclass(frozen=True, slots=True)
class ArchitectureDay:
    """Performance Indicators of both arms on one day."""

    day: int
    homogeneous: float
    hybrid: float


def simulate_architecture_comparison(
    *, days: int = 28, bug_onset: int = 13, rollback_start: int = 21,
    vms_per_arm: int = 128, seed: int = 0,
) -> list[ArchitectureDay]:
    """Daily Performance Indicator per arm over the transition window."""
    if not 0 < bug_onset <= rollback_start <= days:
        raise ValueError(
            f"need 0 < bug_onset <= rollback_start <= days, got "
            f"{bug_onset}/{rollback_start}/{days}"
        )
    homogeneous = build_fleet(
        seed=seed, regions=1, azs_per_region=1, clusters_per_az=2,
        ncs_per_cluster=8, vms_per_nc=max(1, vms_per_arm // 16),
        arch=DeploymentArch.HOMOGENEOUS,
    )
    hybrid = build_fleet(
        seed=seed + 1, regions=1, azs_per_region=1, clusters_per_az=2,
        ncs_per_cluster=8, vms_per_nc=max(1, vms_per_arm // 16),
        arch=DeploymentArch.HYBRID,
    )
    catalog = default_catalog()
    weights = default_weights()
    # Performance-only background so the comparison isolates CDI-P.
    background = [
        r for r in baseline_rates(scale=4.0)
        if r.kind in (FaultKind.SLOW_IO, FaultKind.PACKET_LOSS,
                      FaultKind.VCPU_CONTENTION)
    ]
    buggy_vms = sorted(
        vm_id for vm_id, vm in hybrid.vms.items()
        if hybrid.ncs[vm.nc_id].machine_model == BUGGY_MODEL
    )

    curve: list[ArchitectureDay] = []
    for day in range(1, days + 1):
        day_seed = seed * 10_000 + day
        values = {}
        for arm_name, fleet in (("homogeneous", homogeneous),
                                ("hybrid", hybrid)):
            vm_ids = sorted(fleet.vms)
            injector = FaultInjector(background, seed=day_seed + hash(arm_name) % 97)
            faults = injector.sample(vm_ids, 0.0, DAY)
            if arm_name == "hybrid":
                faults += _contention_faults(
                    buggy_vms, day, bug_onset, rollback_start, days,
                    day_seed,
                )
            vm_periods = periods_by_vm(faults, catalog)
            report = fleet_cdi(vm_periods, full_day_services(vm_ids),
                               catalog=catalog, weights=weights)
            values[arm_name] = report.performance
        curve.append(ArchitectureDay(day=day,
                                     homogeneous=values["homogeneous"],
                                     hybrid=values["hybrid"]))
    return curve


def _contention_faults(buggy_vms: list[str], day: int, bug_onset: int,
                       rollback_start: int, days: int,
                       seed: int) -> list[Fault]:
    """Extra vCPU-contention faults on the incompatible model.

    Severity ramps up from onset, then decays during the staged
    rollback until the curves converge.
    """
    if day < bug_onset:
        return []
    if day < rollback_start:
        ramp = min(1.0, (day - bug_onset + 1) / 3.0)
    else:
        # Staged rollback: contention decays and is fully gone two days
        # before the end, so the curves have converged by the last day
        # (the paper's Day 28).
        converge_day = days - 1
        if day >= converge_day:
            return []
        span = max(1, converge_day - rollback_start)
        ramp = 0.6 * (converge_day - day) / span
    if ramp <= 0.0:
        return []
    rate = FaultRate(FaultKind.VCPU_CONTENTION, 8.0 * ramp, 1800.0)
    injector = FaultInjector([rate], seed=seed)
    return injector.sample(buggy_vms, 0.0, DAY)


def divergence_ratio(curve: list[ArchitectureDay],
                     day_range: tuple[int, int]) -> float:
    """Mean hybrid/homogeneous Performance Indicator ratio over days."""
    lo, hi = day_range
    selected = [d for d in curve if lo <= d.day <= hi]
    if not selected:
        raise ValueError(f"no days in range {day_range}")
    ratios = [
        d.hybrid / d.homogeneous if d.homogeneous > 0 else float("inf")
        for d in selected
    ]
    return sum(ratios) / len(ratios)

"""Fig. 5 scenario: three production incidents vs a normal day.

The paper evaluates CDI against Annual Interruption Rate (AIR) and
Downtime Percentage (DP) on three real incidents:

* **20240425** — Singapore AZ C multi-product outage: existing VMs go
  down → unavailability damage (AIR/DP/CDI-U all move);
* **20240702** — Shanghai AZ N network access abnormality: VM
  connectivity lost → unavailability damage (AIR/DP/CDI-U all move);
* **20250107** — Shanghai region purchase/modify failure: existing
  VMs keep running → *only* control-plane damage (AIR and DP are
  blind; CDI-C moves).

We rebuild each incident's fault pattern on a synthetic fleet and
report all metrics, normalized to the daily baseline like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.baselines import annual_interruption_rate, downtime_percentage
from repro.core.events import default_catalog
from repro.core.indicator import CdiReport, aggregate
from repro.scenarios.common import (
    default_weights,
    fleet_cdi,
    full_day_services,
    periods_by_vm,
)
from repro.telemetry.faults import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultRate,
    baseline_rates,
)
from repro.telemetry.topology import build_fleet

DAY = 86400.0


@dataclass(frozen=True, slots=True)
class IncidentDayMetrics:
    """All metrics for one simulated day."""

    name: str
    cdi: CdiReport
    air: float
    downtime_percentage: float


def _background_faults(vm_ids: list[str], seed: int) -> list[Fault]:
    # Scale the background up (and unavailability further) so the
    # "daily" baseline has non-zero values in every metric — otherwise
    # the Fig. 5 normalization divides by zero-ish baselines.
    rates = []
    boosted_kinds = (FaultKind.VM_DOWN, FaultKind.VM_HANG,
                     FaultKind.CONTROL_API_OUTAGE, FaultKind.CONSOLE_OUTAGE)
    for rate in baseline_rates(scale=5.0):
        boost = 10.0 if rate.kind in boosted_kinds else 1.0
        rates.append(FaultRate(rate.kind, rate.per_target_per_day * boost,
                               rate.mean_duration, rate.duration_sigma))
    injector = FaultInjector(rates, seed=seed)
    return injector.sample(vm_ids, 0.0, DAY)


def _metrics_for(name: str, vm_ids: list[str],
                 faults: list[Fault]) -> IncidentDayMetrics:
    catalog = default_catalog()
    vm_periods = periods_by_vm(faults, catalog)
    services = full_day_services(vm_ids)
    cdi = fleet_cdi(vm_periods, services, catalog=catalog,
                    weights=default_weights())
    vms = [
        (vm_periods.get(vm, []), service) for vm, service in services.items()
    ]
    air = annual_interruption_rate(vms, catalog)
    dp = aggregate(
        (service.duration,
         downtime_percentage(periods, service, catalog))
        for periods, service in vms
    )
    return IncidentDayMetrics(name=name, cdi=cdi, air=air,
                              downtime_percentage=dp)


def simulate_incident_days(*, vm_count: int = 300,
                           seed: int = 0) -> dict[str, IncidentDayMetrics]:
    """Simulate the daily baseline and all three incident days.

    Returns metrics keyed by scenario name (``daily``, ``20240425``,
    ``20240702``, ``20250107``).
    """
    fleet = build_fleet(seed=seed, regions=2, azs_per_region=2,
                        clusters_per_az=2, ncs_per_cluster=3,
                        vms_per_nc=max(1, vm_count // 48))
    vm_ids = sorted(fleet.vms)
    rng = np.random.default_rng(seed)
    # One AZ's VMs are the blast radius for the AZ-scoped incidents.
    az = sorted(fleet.azs)[0]
    az_vms = [vm for vm in vm_ids if fleet.az_of(vm).az_id == az]
    region = fleet.regions[1]
    region_vms = [vm for vm in vm_ids if fleet.region_of(vm) == region]

    scenarios: dict[str, IncidentDayMetrics] = {}
    scenarios["daily"] = _metrics_for(
        "daily", vm_ids, _background_faults(vm_ids, seed)
    )

    # 20240425: AZ-wide outage, existing VMs down for ~2 hours.
    outage_start = 10 * 3600.0
    faults_0425 = _background_faults(vm_ids, seed + 1) + [
        Fault(FaultKind.VM_DOWN, vm, outage_start,
              float(rng.uniform(3600.0, 2.5 * 3600.0)))
        for vm in az_vms
    ]
    scenarios["20240425"] = _metrics_for("20240425", vm_ids, faults_0425)

    # 20240702: network access abnormality — VMs unreachable ~1 hour.
    faults_0702 = _background_faults(vm_ids, seed + 2) + [
        Fault(FaultKind.VM_HANG, vm, 14 * 3600.0,
              float(rng.uniform(1800.0, 5400.0)))
        for vm in az_vms
    ]
    scenarios["20240702"] = _metrics_for("20240702", vm_ids, faults_0702)

    # 20250107: purchase/modify broken region-wide for ~4 hours;
    # existing VMs unaffected on the data plane.
    faults_0107 = _background_faults(vm_ids, seed + 3) + [
        Fault(FaultKind.CONTROL_API_OUTAGE, vm, 9 * 3600.0, 4 * 3600.0)
        for vm in region_vms
    ]
    scenarios["20250107"] = _metrics_for("20250107", vm_ids, faults_0107)
    return scenarios


def normalize_to_daily(scenarios: Mapping[str, IncidentDayMetrics]
                       ) -> dict[str, dict[str, float]]:
    """Express every metric relative to the daily baseline (Fig. 5).

    A baseline of zero normalizes against a small epsilon so that
    "no damage at baseline, damage during incident" shows up as a
    large ratio rather than a division error.
    """
    daily = scenarios["daily"]
    eps = 1e-9

    def ratio(value: float, base: float) -> float:
        return value / (base if base > eps else eps)

    rows = {}
    for name, metrics in scenarios.items():
        rows[name] = {
            "CDI-U": ratio(metrics.cdi.unavailability,
                           daily.cdi.unavailability),
            "CDI-P": ratio(metrics.cdi.performance, daily.cdi.performance),
            "CDI-C": ratio(metrics.cdi.control_plane,
                           daily.cdi.control_plane),
            "AIR": ratio(metrics.air, daily.air),
            "DP": ratio(metrics.downtime_percentage,
                        daily.downtime_percentage),
        }
    return rows

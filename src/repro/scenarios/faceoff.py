"""AIR-vs-CDI head-to-head over the outage scenario family.

The study replays every :mod:`repro.scenarios.outages` member through
the **real** daily CDI job — faults become catalog events, events are
ingested into the events table, and both KPIs read that one table:
CDI from the job's fleet report, AIR from
:func:`repro.analytics.air.air_from_rows` over the identical partition
rows.  Nothing is shared downstream of the event stream, so any
disagreement between the two KPIs is a property of the *metrics*, not
of the plumbing.

Per scenario the study measures, on the incident day against a
seven-day baseline:

* the AIR ratio (incident-day AIR / baseline mean) and whether it
  clears :data:`FLAG_RATIO`;
* the same ratio for each CDI sub-metric (unavailability,
  performance, control plane);
* a verdict classifying the (AIR flagged?, CDI flagged?) pair —
  ``air_blind`` is the paper's thesis made quantitative: CDI flags
  damage AIR calls a healthy fleet;
* for spatially concentrated incidents, Adtributor localization
  (:func:`repro.analytics.rca.localize`) over the per-VM CDI
  decomposition, scored against the injected cluster truth.

:func:`faceoff_json` serializes the result byte-deterministically
(sorted keys, fixed float formatting from pure-function arithmetic):
reruns — on either executor backend — produce identical bytes, which
CI enforces with ``cmp``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analytics.air import air_from_rows
from repro.analytics.rca import localize, vm_damage_leaves
from repro.core.events import Event, EventCategory, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import EVENTS_TABLE
from repro.scenarios.common import default_weights, fault_to_period
from repro.scenarios.outages import OutageScenario, outage_family
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.fleetgen import labeled_day_faults

#: A KPI "flags" the incident day when its value reaches this multiple
#: of its seven-day baseline mean.  3× sits far above background
#: day-to-day noise (verified by the ``quiet`` member) yet far below
#: every designed spike.
FLAG_RATIO = 3.0

#: Guard against a zero baseline (a KPI that never fired in the
#: baseline week): the ratio is computed against at least this much.
_EPS = 1e-12

#: Expire interval stamped on synthetic events (matches the
#: closed-loop controller's telemetry rendering).
_EXPIRE_INTERVAL = 600.0

#: Sub-metric keys in artifact order, mapped to their category.
CDI_METRICS: tuple[tuple[str, EventCategory], ...] = (
    ("cdi_unavailability", EventCategory.UNAVAILABILITY),
    ("cdi_performance", EventCategory.PERFORMANCE),
    ("cdi_control_plane", EventCategory.CONTROL_PLANE),
)


def _kpi_stats(daily: list[float]) -> dict[str, Any]:
    """Baseline/incident/ratio/flag record for one KPI's daily curve."""
    baseline = daily[:-1]
    value = daily[-1]
    mean = sum(baseline) / len(baseline)
    ratio = value / max(mean, _EPS)
    return {
        "daily": daily,
        "baseline_mean": mean,
        "incident_value": value,
        "ratio": ratio,
        "flagged": ratio >= FLAG_RATIO,
    }


def _verdict(air_flagged: bool, cdi_flagged: bool) -> str:
    """Classify one scenario's (AIR, CDI) flag pair."""
    if air_flagged and cdi_flagged:
        return "both_flag"
    if not air_flagged and not cdi_flagged:
        return "both_quiet"
    if cdi_flagged:
        return "air_blind"
    return "cdi_blind"


def _score_rca(scenario: OutageScenario,
               vm_rows: list[list[dict[str, Any]]]) -> dict[str, Any]:
    """Localize the incident-day damage and score it against truth.

    Mirrors the closed-loop controller's RCA framing: per-VM damage is
    ``sub_metric × service_time``, expected comes from the seven
    baseline days, actual from the incident day, and the Adtributor
    localization is correct when it names the truth dimension and its
    values cover every injected cluster.
    """
    category = scenario.incidents[0].category
    metric = category.value
    expected: dict[str, list[float]] = {}
    for rows in vm_rows[:-1]:
        for row in rows:
            expected.setdefault(row["vm"], []).append(
                row[metric] * row["service_time"]
            )
    actual = {
        row["vm"]: row[metric] * row["service_time"]
        for row in vm_rows[-1]
    }
    cause = localize(vm_damage_leaves(
        expected, actual, scenario.fleet.dimensions_of
    ))
    truth_dimension = scenario.incidents[0].dimension
    truth_values = sorted({i.value for i in scenario.incidents})
    correct = (
        cause is not None
        and cause.dimension == truth_dimension
        and set(truth_values) <= set(cause.values)
    )
    return {
        "scored": True,
        "category": metric,
        "truth_dimension": truth_dimension,
        "truth_values": truth_values,
        "dimension": cause.dimension if cause else None,
        "values": sorted(cause.values) if cause else [],
        "explanatory_power": cause.explanatory_power if cause else 0.0,
        "correct": correct,
    }


def run_scenario(scenario: OutageScenario, *,
                 backend: str = "thread") -> dict[str, Any]:
    """Replay one family member through the daily job; measure KPIs.

    Every day's labeled faults are rendered as catalog events and
    ingested into a fresh job's events table; the day's CDI comes from
    the job's fleet report and the day's AIR from the same partition's
    raw rows.  The returned record is plain data, a pure function of
    ``(scenario, backend)`` — and of ``scenario`` alone, since both
    backends compute byte-identical outputs.
    """
    catalog = default_catalog()
    job = DailyCdiJob(
        EngineContext(parallelism=2, backend=backend),
        TableStore(), ConfigDB(), catalog,
    )
    job.store_weights(default_weights())
    services = {
        vm: ServicePeriod(0.0, scenario.day_seconds)
        for vm in scenario.vm_ids
    }

    air_daily: list[float] = []
    interruptions_daily: list[int] = []
    cdi_daily: dict[str, list[float]] = {key: [] for key, _ in CDI_METRICS}
    vm_rows: list[list[dict[str, Any]]] = []
    for day in range(scenario.days):
        partition = f"day{day:02d}"
        labeled = labeled_day_faults(
            scenario.vm_ids, scenario.rates, day, seed=scenario.seed,
            incidents=scenario.incidents,
            day_seconds=scenario.day_seconds,
        )
        events = []
        for lf in labeled:
            period = fault_to_period(lf.fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=_EXPIRE_INTERVAL, level=period.level,
                attributes={"duration": period.duration},
            ))
        job.ingest_events(events, partition)
        result = job.run(partition, services)
        for key, category in CDI_METRICS:
            cdi_daily[key].append(result.fleet_report.sub_metric(category))
        rows = job.tables.get(EVENTS_TABLE).rows(partition=partition)
        air_report = air_from_rows(rows, services, catalog)
        air_daily.append(air_report.air)
        interruptions_daily.append(air_report.interruptions)
        vm_rows.append(job.output_rows(partition)[0])

    kpis: dict[str, Any] = {"air": _kpi_stats(air_daily)}
    kpis["air"]["daily_interruptions"] = interruptions_daily
    for key, _ in CDI_METRICS:
        kpis[key] = _kpi_stats(cdi_daily[key])

    air_flagged = kpis["air"]["flagged"]
    cdi_flagged = any(kpis[key]["flagged"] for key, _ in CDI_METRICS)
    record: dict[str, Any] = {
        "name": scenario.name,
        "description": scenario.description,
        "expected": {"air": scenario.expect_air,
                     "cdi": scenario.expect_cdi},
        "kpis": kpis,
        "air_flagged": air_flagged,
        "cdi_flagged": cdi_flagged,
        "verdict": _verdict(air_flagged, cdi_flagged),
        "matches_expected": (air_flagged is scenario.expect_air
                             and cdi_flagged is scenario.expect_cdi),
        "rca": (_score_rca(scenario, vm_rows)
                if scenario.rca_scored else {"scored": False}),
    }
    return record


def run_faceoff(seed: int = 0, *, backend: str = "thread") -> dict[str, Any]:
    """The full head-to-head study: every family member, one artifact.

    Returns the plain-data result :func:`faceoff_json` serializes —
    per-scenario KPI records plus a summary (scenario names per
    verdict, RCA localization accuracy over the scored members, and
    whether every scenario matched its designed expectation).
    """
    scenarios = outage_family(seed)
    records = [run_scenario(s, backend=backend) for s in scenarios]
    by_verdict: dict[str, list[str]] = {}
    for record in records:
        by_verdict.setdefault(record["verdict"], []).append(record["name"])
    scored = [r for r in records if r["rca"]["scored"]]
    correct = [r for r in scored if r["rca"]["correct"]]
    return {
        "schema_version": 1,
        "seed": seed,
        "days": scenarios[0].days,
        "flag_ratio": FLAG_RATIO,
        "fleet": {
            "vms": len(scenarios[0].vm_ids),
            "clusters": len(scenarios[0].fleet.clusters),
        },
        "scenarios": records,
        "summary": {
            "verdicts": {v: sorted(names)
                         for v, names in sorted(by_verdict.items())},
            "air_blind_scenarios": sorted(
                r["name"] for r in records if r["verdict"] == "air_blind"
            ),
            "cdi_blind_scenarios": sorted(
                r["name"] for r in records if r["verdict"] == "cdi_blind"
            ),
            "rca": {
                "scored": len(scored),
                "correct": len(correct),
                "accuracy": (len(correct) / len(scored)) if scored else 0.0,
            },
            "expectations_met": all(r["matches_expected"] for r in records),
        },
    }


def faceoff_json(result: dict[str, Any]) -> str:
    """Canonical byte-deterministic serialization of a faceoff result."""
    return json.dumps(result, indent=2, sort_keys=True) + "\n"

"""Baseline stability metrics the paper compares against (Section III-A).

* **Downtime Percentage (DP)** — proportion of time a cloud server is
  unavailable relative to its total service time; the traditional
  industry metric.
* **Annual Interruption Rate (AIR)** — Azure's frequency-based metric
  (Levy et al., OSDI '20): interruption *occurrences* per VM-year,
  positing that long unavailability is rare so frequency reflects
  customer impact better than duration.
* **MTBF / MTTR** — classical reliability figures, included for the
  related-work comparison.

All of these look only at unavailability events; they are the
strawmen Fig. 5 contrasts with CDI, which additionally captures
performance and control-plane damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.events import EventCatalog, EventCategory
from repro.core.indicator import ServicePeriod, WeightedInterval, damage_integral
from repro.core.periods import EventPeriod

SECONDS_PER_YEAR = 365.0 * 24 * 3600


def _unavailability_periods(
    periods: Iterable[EventPeriod], catalog: EventCatalog
) -> list[EventPeriod]:
    return [
        p for p in periods
        if catalog.category_of(p.name) is EventCategory.UNAVAILABILITY
    ]


def downtime_percentage(periods: Iterable[EventPeriod],
                        service: ServicePeriod,
                        catalog: EventCatalog) -> float:
    """Fraction of the service period spent unavailable.

    Overlapping unavailability periods are merged (a VM cannot be
    "doubly down"), which is exactly the unit-weight damage integral.
    """
    intervals = [
        WeightedInterval(p.start, p.end, 1.0, p.name)
        for p in _unavailability_periods(periods, catalog)
    ]
    return damage_integral(intervals, service) / service.duration


def interruption_count(periods: Iterable[EventPeriod],
                       service: ServicePeriod,
                       catalog: EventCatalog) -> int:
    """Number of distinct unavailability occurrences in the period.

    Occurrences whose periods touch or overlap are counted once —
    a reboot that flaps in and out of reachability is one interruption
    from the customer's point of view.
    """
    spans = sorted(
        (max(p.start, service.start), min(p.end, service.end))
        for p in _unavailability_periods(periods, catalog)
        if p.end > service.start and p.start < service.end
    )
    count = 0
    current_end = float("-inf")
    for start, end in spans:
        if start > current_end:
            count += 1
            current_end = end
        else:
            current_end = max(current_end, end)
    return count


def annual_interruption_rate(
    vms: Iterable[tuple[Sequence[EventPeriod], ServicePeriod]],
    catalog: EventCatalog,
) -> float:
    """AIR: interruption occurrences per 100 VM-years of service.

    The conventional presentation scales to "interruptions a customer
    running 100 VMs for a year would observe".
    """
    interruptions = 0
    service_seconds = 0.0
    for periods, service in vms:
        interruptions += interruption_count(periods, service, catalog)
        service_seconds += service.duration
    if service_seconds == 0.0:
        return 0.0
    vm_years = service_seconds / SECONDS_PER_YEAR
    return interruptions / vm_years * 100.0 if vm_years else 0.0


@dataclass(frozen=True, slots=True)
class ReliabilityFigures:
    """MTBF / MTTR / availability for a set of VMs (seconds)."""

    mtbf: float
    mttr: float

    @property
    def availability(self) -> float:
        """Classical availability = MTBF / (MTBF + MTTR)."""
        denominator = self.mtbf + self.mttr
        if denominator == 0.0:
            return 1.0
        return self.mtbf / denominator


def reliability_figures(
    vms: Iterable[tuple[Sequence[EventPeriod], ServicePeriod]],
    catalog: EventCatalog,
) -> ReliabilityFigures:
    """MTBF and MTTR over a collection of VMs.

    MTTR is mean unavailability duration per failure; MTBF is mean
    *up* time between failures.  With zero failures both are infinite;
    we report MTBF = total uptime and MTTR = 0 in that case.
    """
    failures = 0
    down_seconds = 0.0
    total_seconds = 0.0
    for periods, service in vms:
        failures += interruption_count(periods, service, catalog)
        down_seconds += (
            downtime_percentage(periods, service, catalog) * service.duration
        )
        total_seconds += service.duration
    up_seconds = total_seconds - down_seconds
    if failures == 0:
        return ReliabilityFigures(mtbf=up_seconds, mttr=0.0)
    return ReliabilityFigures(
        mtbf=up_seconds / failures, mttr=down_seconds / failures
    )

"""Comprehensive Damage Indicator computation (paper Section IV-D).

Algorithm 1 computes the CDI of one VM over a service period: lay all
weighted event intervals over the period, take the per-instant
**maximum** weight where events overlap, and average over the period::

    Q = (1 / (T_e - T_s)) * integral_{T_s}^{T_e} W(t) dt

The paper presents the algorithm over discretized time slots; we
implement an exact event-boundary sweep (equivalent in the limit of an
infinitesimal slot, and exact for arbitrary real timestamps).  A naive
slot-array implementation is kept in :func:`cdi_slotted` for the
ablation benchmark.

Formula 4 aggregates per-VM CDIs over a collection, weighted by
service time::

    Q = sum_i(T_i * Q_i) / sum_i(T_i)
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.events import EventCatalog, EventCategory, Severity
from repro.core.periods import EventPeriod
from repro.core.weights import WeightConfig


@dataclass(frozen=True, slots=True)
class WeightedInterval:
    """The ``e = (t_s, t_e, w)`` event representation of Section IV-A."""

    start: float
    end: float
    weight: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval ends before it starts: [{self.start}, {self.end}]"
            )
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {self.weight}")

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ServicePeriod:
    """The ``[T_s, T_e]`` window a VM was in service."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"service period must have positive length: "
                f"[{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        """Service time ``T_i`` in seconds."""
        return self.end - self.start


def damage_integral(intervals: Iterable[WeightedInterval],
                    period: ServicePeriod) -> float:
    """Exact integral of the per-instant max event weight over ``period``.

    This is the summation step of Algorithm 1.  Intervals are clipped
    to the service period; where several overlap, the maximum weight
    applies.  Runs in ``O(n log n)`` via a boundary sweep with a lazy
    max-heap of active intervals.
    """
    clipped = []
    for iv in intervals:
        start = max(iv.start, period.start)
        end = min(iv.end, period.end)
        if end > start and iv.weight > 0.0:
            clipped.append((start, end, iv.weight))
    if not clipped:
        return 0.0
    clipped.sort()

    boundaries = sorted({t for s, e, _ in clipped for t in (s, e)})
    heap: list[tuple[float, float]] = []  # (-weight, end)
    total = 0.0
    next_interval = 0
    for left, right in zip(boundaries, boundaries[1:]):
        while next_interval < len(clipped) and clipped[next_interval][0] <= left:
            start, end, weight = clipped[next_interval]
            heapq.heappush(heap, (-weight, end))
            next_interval += 1
        while heap and heap[0][1] <= left:
            heapq.heappop(heap)
        if heap:
            total += -heap[0][0] * (right - left)
    return total


def cdi(intervals: Iterable[WeightedInterval], period: ServicePeriod) -> float:
    """Algorithm 1: CDI of one VM over one service period."""
    return damage_integral(intervals, period) / period.duration


def damage_integral_quantized(intervals: Sequence[WeightedInterval],
                              period: ServicePeriod) -> float:
    """Vectorized damage integral exploiting quantized weights.

    CDI weights come from a small set of levels (Formulas 1-3 produce
    at most ``m * n`` distinct values), so the max-weight integral
    decomposes by weight level::

        integral = sum_i w_i * (U_i - U_{i-1})

    where the weights ``w_1 > w_2 > ...`` are the distinct levels and
    ``U_i`` is the union length of all intervals with weight >= w_i.
    Each union is computed with numpy sorting, so the cost is
    ``O(k * n log n)`` for ``k`` distinct weights — typically k <= 16.
    Equivalent to :func:`damage_integral` up to float summation order.

    Levels are matched exactly (``np.unique`` on the weight array), so
    two genuinely distinct float weights are never merged, and an
    empty level mask can only arise from an empty interval set — which
    returns 0.0 before any union is computed.

    The fleet-scale generalization of this decomposition — every VM,
    category, and event name in one grouped sweep — lives in
    :func:`repro.core.fastpath.grouped_damage_integrals`.
    """
    import numpy as np

    starts, ends, weights = [], [], []
    for iv in intervals:
        start = max(iv.start, period.start)
        end = min(iv.end, period.end)
        if end > start and iv.weight > 0.0:
            starts.append(start)
            ends.append(end)
            weights.append(iv.weight)
    if not starts:
        return 0.0
    starts_arr = np.asarray(starts)
    ends_arr = np.asarray(ends)
    weights_arr = np.asarray(weights)

    def union_length(mask: np.ndarray) -> float:
        s = starts_arr[mask]
        if s.size == 0:
            return 0.0
        e = ends_arr[mask]
        order = np.argsort(s)
        s, e = s[order], e[order]
        # Merge overlapping intervals: a new segment begins where the
        # start exceeds the running max of previous ends.
        running_end = np.maximum.accumulate(e)
        new_segment = np.empty(s.shape, dtype=bool)
        new_segment[0] = True
        new_segment[1:] = s[1:] > running_end[:-1]
        seg_starts = s[new_segment]
        seg_ends = np.maximum.reduceat(e, np.flatnonzero(new_segment))
        return float((seg_ends - seg_starts).sum())

    total = 0.0
    previous_union = 0.0
    for level in np.unique(weights_arr)[::-1]:
        union = union_length(weights_arr >= level)
        total += float(level) * (union - previous_union)
        previous_union = union
    return total


def cdi_slotted(intervals: Sequence[WeightedInterval], period: ServicePeriod,
                slot: float = 60.0) -> float:
    """Naive slot-array rendition of Algorithm 1 (for the ablation bench).

    Materializes ``W[T_s .. T_e]`` at ``slot`` granularity exactly as
    written in the paper's pseudocode.  Interval boundaries snap to
    slots, so the result only matches :func:`cdi` when all timestamps
    are slot-aligned.
    """
    import numpy as np

    if slot <= 0:
        raise ValueError(f"slot must be positive, got {slot}")
    slots = max(1, math.ceil(period.duration / slot))
    weights = np.zeros(slots)
    for iv in intervals:
        if iv.end <= period.start or iv.start >= period.end:
            continue
        first = max(0, int((max(iv.start, period.start) - period.start) // slot))
        last = min(slots, math.ceil((min(iv.end, period.end) - period.start) / slot))
        np.maximum(weights[first:last], iv.weight, out=weights[first:last])
    return float(weights.sum()) / slots


def aggregate(per_vm: Iterable[tuple[float, float]]) -> float:
    """Formula 4: service-time-weighted mean of per-VM CDIs.

    ``per_vm`` yields ``(service_time, cdi)`` pairs.  Returns 0.0 for
    an empty collection (no service time, no damage).
    """
    numerator = 0.0
    denominator = 0.0
    for service_time, value in per_vm:
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        numerator += service_time * value
        denominator += service_time
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


@dataclass(frozen=True, slots=True)
class CdiReport:
    """The three sub-metrics of one VM (or one aggregated collection).

    Mirrors the first output table of the production Spark job
    (Section V): Unavailability Indicator, Performance Indicator,
    Control-Plane Indicator, and service time.
    """

    unavailability: float
    performance: float
    control_plane: float
    service_time: float

    def sub_metric(self, category: EventCategory) -> float:
        """The sub-metric value for one event category."""
        if category is EventCategory.UNAVAILABILITY:
            return self.unavailability
        if category is EventCategory.PERFORMANCE:
            return self.performance
        return self.control_plane

    def combined(self, weights: Mapping[EventCategory, float] | None = None) -> float:
        """Weighted-sum aggregation of the three sub-metrics.

        The paper (Section VI-D) notes the sub-metrics can be folded
        into a single figure by weighted summation; equal weights by
        default.
        """
        if weights is None:
            weights = {category: 1.0 for category in EventCategory}
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("combined weights must sum to a positive value")
        return (
            sum(weights.get(c, 0.0) * self.sub_metric(c) for c in EventCategory)
            / total
        )


class CdiCalculator:
    """Turns resolved event periods into CDI reports.

    Binds together the event catalog (name → category) and the weight
    configuration (name + level → weight), then runs Algorithm 1 per
    category and Formula 4 across VMs.
    """

    def __init__(self, catalog: EventCatalog, weights: WeightConfig) -> None:
        self._catalog = catalog
        self._weights = weights
        # (name, level) → (weight, category); weight resolution is pure
        # in the config, so each combination is computed at most once
        # per calculator (and therefore once per daily job).
        self._resolved: dict[tuple[str, Severity],
                             tuple[float, EventCategory] | None] = {}

    @property
    def catalog(self) -> EventCatalog:
        """The event catalog in use."""
        return self._catalog

    def weighted_interval(self, period: EventPeriod) -> WeightedInterval | None:
        """Attach the configured weight to one event period.

        Returns ``None`` for event names absent from the catalog (they
        cannot be categorized and are excluded from CDI, matching the
        production behaviour of only evaluating registered events).
        """
        key = (period.name, period.level)
        try:
            resolved = self._resolved[key]
        except KeyError:
            category = self._catalog.category_of(period.name)
            if category is None:
                resolved = None
            else:
                resolved = (
                    self._weights.resolve(period.name, period.level, category),
                    category,
                )
            self._resolved[key] = resolved
        if resolved is None:
            return None
        return WeightedInterval(
            start=period.start, end=period.end, weight=resolved[0],
            name=period.name,
        )

    def _intervals_by_category(
        self, periods: Iterable[EventPeriod]
    ) -> dict[EventCategory, list[WeightedInterval]]:
        buckets: dict[EventCategory, list[WeightedInterval]] = {
            category: [] for category in EventCategory
        }
        for period in periods:
            interval = self.weighted_interval(period)
            if interval is None:
                continue
            _, category = self._resolved[(period.name, period.level)]
            buckets[category].append(interval)
        return buckets

    def vm_report(self, periods: Iterable[EventPeriod],
                  service: ServicePeriod) -> CdiReport:
        """Three sub-metrics of one VM over its service period."""
        buckets = self._intervals_by_category(periods)
        return CdiReport(
            unavailability=cdi(buckets[EventCategory.UNAVAILABILITY], service),
            performance=cdi(buckets[EventCategory.PERFORMANCE], service),
            control_plane=cdi(buckets[EventCategory.CONTROL_PLANE], service),
            service_time=service.duration,
        )

    def event_level_cdi(self, periods: Iterable[EventPeriod],
                        service: ServicePeriod,
                        event_name: str) -> float:
        """Drill-down CDI restricted to one event name (Section VI-C).

        The computation is Algorithm 1 with the input narrowed from all
        events to occurrences of ``event_name`` only.
        """
        intervals = [
            interval
            for period in periods
            if period.name == event_name
            and (interval := self.weighted_interval(period)) is not None
        ]
        return cdi(intervals, service)

    def fleet_report(
        self,
        vms: Mapping[str, tuple[Sequence[EventPeriod], ServicePeriod]],
    ) -> CdiReport:
        """Formula 4 aggregation over a collection of VMs."""
        reports = [
            self.vm_report(periods, service)
            for periods, service in vms.values()
        ]
        return aggregate_reports(reports)


def aggregate_reports(reports: Sequence[CdiReport]) -> CdiReport:
    """Formula 4 applied independently to each sub-metric."""
    service = sum(r.service_time for r in reports)
    return CdiReport(
        unavailability=aggregate((r.service_time, r.unavailability) for r in reports),
        performance=aggregate((r.service_time, r.performance) for r in reports),
        control_plane=aggregate((r.service_time, r.control_plane) for r in reports),
        service_time=service,
    )


def damage_integral_with(intervals: Iterable[WeightedInterval],
                         period: ServicePeriod,
                         combine: Callable[[Sequence[float]], float]) -> float:
    """Damage integral under an alternative overlap semantics.

    Used by the overlap-semantics ablation: ``combine`` reduces the
    weights of all simultaneously active events in a segment (the paper
    uses ``max``; the ablation contrasts ``sum`` — capped at 1 — and
    ``mean``).

    Runs as an ``O((n + b) log n)`` sorted-boundary sweep with an
    explicit active set instead of re-filtering all ``n`` clipped
    intervals for each of the ``b`` boundary segments.  ``combine``
    still receives the active weights in the same (input) order the
    per-segment rescan produced, so its result — including float
    summation order for ``sum``/``mean`` — is unchanged.
    """
    clipped = [
        (max(iv.start, period.start), min(iv.end, period.end), iv.weight)
        for iv in intervals
        if min(iv.end, period.end) > max(iv.start, period.start) and iv.weight > 0
    ]
    if not clipped:
        return 0.0
    boundaries = sorted({t for s, e, _ in clipped for t in (s, e)})
    # Intervals indexed by clipped (input) order; entry/exit queues are
    # processed in time order while the active set stays sorted by
    # input index so ``combine`` sees the exact list the naive rescan
    # would have built for each segment.
    by_start = sorted(range(len(clipped)), key=lambda i: clipped[i][0])
    expiry: list[tuple[float, int]] = []  # (end, index) min-heap
    active_indices: list[int] = []  # sorted input indices of active intervals
    total = 0.0
    next_entry = 0
    for left, right in zip(boundaries, boundaries[1:]):
        while next_entry < len(by_start) and clipped[by_start[next_entry]][0] <= left:
            index = by_start[next_entry]
            bisect.insort(active_indices, index)
            heapq.heappush(expiry, (clipped[index][1], index))
            next_entry += 1
        while expiry and expiry[0][0] <= left:
            _, index = heapq.heappop(expiry)
            del active_indices[bisect.bisect_left(active_indices, index)]
        if active_indices:
            active = [clipped[i][2] for i in active_indices]
            total += combine(active) * (right - left)
    return total

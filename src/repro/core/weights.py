"""Event weight assignment (paper Section IV-C, Example 3).

Every event occurrence is assigned a weight ``w in (0, 1]`` expressing
its severity:

* the **expert** perspective maps the event's severity level to
  ``l_i = i / m`` over ``m`` increasing levels (Formula 1);
* the **customer** perspective ranks event names by the number of
  related complaint tickets over the previous year and distributes
  them proportionately into ``n`` levels, the ``j``-th weighing
  ``p_j = j / n`` (Formula 2);
* the two are fused with AHP proportions ``alpha_1, alpha_2``:
  ``w = (alpha_1 * l_i + alpha_2 * p_j) / (alpha_1 + alpha_2)``
  (Formula 3).

Unavailability events always weigh 1.0 — when a VM is down it is
completely unable to provide computing services, so there is no
severity gradation to express (Section IV-C opening paragraph).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.ahp import two_perspective_alphas
from repro.core.events import EventCategory, Severity


def expert_level_weight(rank: int, levels: int) -> float:
    """Formula 1: ``l_i = i / m`` for the ``i``-th of ``m`` levels."""
    if not 1 <= rank <= levels:
        raise ValueError(f"expert rank {rank} out of range 1..{levels}")
    return rank / levels


def customer_level_weight(rank: int, levels: int) -> float:
    """Formula 2: ``p_j = j / n`` for the ``j``-th of ``n`` levels."""
    if not 1 <= rank <= levels:
        raise ValueError(f"customer rank {rank} out of range 1..{levels}")
    return rank / levels


def fuse_weights(expert: float, customer: float,
                 alpha_expert: float, alpha_customer: float) -> float:
    """Formula 3: AHP-weighted mean of the two perspective weights."""
    if alpha_expert < 0 or alpha_customer < 0:
        raise ValueError("alpha proportions must be non-negative")
    total = alpha_expert + alpha_customer
    if total <= 0:
        raise ValueError("alpha proportions must not both be zero")
    return (alpha_expert * expert + alpha_customer * customer) / total


def customer_levels_from_ticket_counts(
    ticket_counts: Mapping[str, int], levels: int
) -> dict[str, int]:
    """Assign each event name a customer level from ticket counts.

    Event names are ranked by ascending related-ticket count and
    proportionately distributed into ``levels`` buckets by ranking
    position (Section IV-C): the lowest-complained-about names land in
    level 1, the most complained-about in level ``levels``.  Ties are
    broken by name for determinism.

    In Example 3 an event whose ticket count is higher than 43% of all
    events (i.e. at relative rank position 0.43) falls into the second
    of four levels; this function reproduces that bucketing via
    ``ceil(position * levels)``.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    for name, count in ticket_counts.items():
        if count < 0:
            raise ValueError(f"negative ticket count for {name!r}: {count}")
    ordered = sorted(ticket_counts, key=lambda name: (ticket_counts[name], name))
    total = len(ordered)
    assignment: dict[str, int] = {}
    for position, name in enumerate(ordered, start=1):
        fraction = position / total
        assignment[name] = max(1, math.ceil(fraction * levels))
    return assignment


@dataclass(frozen=True, slots=True)
class WeightConfig:
    """Resolved per-(event name, severity) weights.

    Built once per day from the ticket statistics and the AHP alphas
    (see :func:`build_weight_config`) and persisted in the config DB so
    the daily pipeline is reproducible.  ``resolve`` falls back to the
    expert-only weight when an event name has no customer level (e.g.
    brand-new events with no ticket history yet).
    """

    alpha_expert: float
    alpha_customer: float
    expert_levels: int
    customer_levels: int
    customer_level_by_name: Mapping[str, int] = field(default_factory=dict)
    unavailability_full_weight: bool = True

    def expert_weight(self, level: Severity) -> float:
        """Formula 1 weight of an expert severity level."""
        return expert_level_weight(level.rank, self.expert_levels)

    def customer_weight(self, name: str) -> float | None:
        """Formula 2 weight of an event name, if it has ticket history."""
        rank = self.customer_level_by_name.get(name)
        if rank is None:
            return None
        return customer_level_weight(rank, self.customer_levels)

    def resolve(self, name: str, level: Severity,
                category: EventCategory | None = None) -> float:
        """Final fused weight of one event occurrence (Formula 3)."""
        if (
            self.unavailability_full_weight
            and category is EventCategory.UNAVAILABILITY
        ):
            return 1.0
        expert = self.expert_weight(level)
        customer = self.customer_weight(name)
        if customer is None:
            return expert
        return fuse_weights(expert, customer, self.alpha_expert, self.alpha_customer)

    def to_dict(self) -> dict:
        """JSON-serializable form for the config DB (paper Fig. 4)."""
        return {
            "alpha_expert": self.alpha_expert,
            "alpha_customer": self.alpha_customer,
            "expert_levels": self.expert_levels,
            "customer_levels": self.customer_levels,
            "customer_level_by_name": dict(self.customer_level_by_name),
            "unavailability_full_weight": self.unavailability_full_weight,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WeightConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            alpha_expert=float(data["alpha_expert"]),
            alpha_customer=float(data["alpha_customer"]),
            expert_levels=int(data["expert_levels"]),
            customer_levels=int(data["customer_levels"]),
            customer_level_by_name={
                str(k): int(v)
                for k, v in data.get("customer_level_by_name", {}).items()
            },
            unavailability_full_weight=bool(
                data.get("unavailability_full_weight", True)
            ),
        )


def build_weight_config(
    ticket_counts: Mapping[str, int],
    *,
    expert_levels: int = Severity.count(),
    customer_levels: int = 4,
    expert_vs_customer: float = 1.0,
    unavailability_full_weight: bool = True,
) -> WeightConfig:
    """Build a :class:`WeightConfig` from last year's ticket statistics.

    ``expert_vs_customer`` is the AHP pairwise judgment between the two
    perspectives (1.0 reproduces the paper's equal alphas of 0.5).
    """
    alpha_expert, alpha_customer = two_perspective_alphas(expert_vs_customer)
    customer_level_by_name = customer_levels_from_ticket_counts(
        ticket_counts, customer_levels
    )
    return WeightConfig(
        alpha_expert=alpha_expert,
        alpha_customer=alpha_customer,
        expert_levels=expert_levels,
        customer_levels=customer_levels,
        customer_level_by_name=customer_level_by_name,
        unavailability_full_weight=unavailability_full_weight,
    )


def expert_only_config(
    *, expert_levels: int = Severity.count(),
    unavailability_full_weight: bool = True,
) -> WeightConfig:
    """A config that ignores the customer perspective entirely.

    Used by the weight-perspective ablation benchmark.
    """
    return WeightConfig(
        alpha_expert=1.0,
        alpha_customer=0.0,
        expert_levels=expert_levels,
        customer_levels=1,
        customer_level_by_name={},
        unavailability_full_weight=unavailability_full_weight,
    )

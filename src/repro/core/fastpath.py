"""Batched fleet-wide CDI kernel (the daily job's fast path).

The production Spark job (Section V) computes Algorithm 1 for millions
of VMs per day.  The straightforward reproduction runs one pure-Python
boundary sweep per VM per category — and then re-runs the whole sweep
once more *per event name* for the drill-down table.  This module
replaces all of those sweeps with **one** vectorized pass over the
entire fleet:

1. every clipped weighted interval of every VM is flattened into flat
   numpy arrays, tagged with an integer *group id* — one group per
   ``(vm, category)`` for the per-VM sub-metrics and one per
   ``(vm, event_name)`` for the drill-down table;
2. :func:`grouped_damage_integrals` computes the damage integral of
   every group simultaneously via a group-major ``lexsort`` boundary
   sweep combined with the quantized-weight level decomposition
   (weights come from a small set of levels, Formulas 1-3), so the
   per-segment max weight is recovered with one exact coverage cumsum
   per distinct level instead of a per-VM heap.

The kernel is **bit-identical** to :func:`repro.core.indicator.
damage_integral`: per group it forms the same boundary segments, the
same per-segment max weight, the same ``weight * length`` products,
and accumulates them in the same left-to-right time order (via
``np.bincount``, which sums in index order), so every float rounding
step matches the reference heap sweep.

:class:`WeightTable` precomputes the ``(event name, severity) →
weight`` resolution once per job (satellite of the same optimisation:
``CdiCalculator`` used to call ``WeightConfig.resolve`` per period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.events import EventCatalog, EventCategory, EventKind, Severity
from repro.core.indicator import ServicePeriod
from repro.core.periods import EventPeriod
from repro.core.weights import WeightConfig

#: Fixed category order of the per-VM output row.
CATEGORY_ORDER: tuple[EventCategory, ...] = (
    EventCategory.UNAVAILABILITY,
    EventCategory.PERFORMANCE,
    EventCategory.CONTROL_PLANE,
)

_CATEGORY_INDEX = {category: i for i, category in enumerate(CATEGORY_ORDER)}


@dataclass(frozen=True)
class WeightTable:
    """Precomputed ``(name, severity) → (weight, category index)`` lookup.

    Built once per daily job from the event catalog and the weight
    configuration; the per-period dict lookup replaces a
    ``WeightConfig.resolve`` call (Formulas 1-3 re-evaluated per
    period) with a single hash probe.  The cached weights are the exact
    floats ``resolve`` returns, so downstream CDI numbers are
    unchanged.
    """

    entries: Mapping[tuple[str, Severity], tuple[float, int]]

    @classmethod
    def from_config(cls, catalog: EventCatalog,
                    config: WeightConfig) -> "WeightTable":
        """Resolve every (catalog name, severity) combination once."""
        entries: dict[tuple[str, Severity], tuple[float, int]] = {}
        for spec in catalog:
            category_index = _CATEGORY_INDEX[spec.category]
            for level in Severity:
                weight = config.resolve(spec.name, level, spec.category)
                entries[(spec.name, level)] = (weight, category_index)
        return cls(entries=entries)

    def lookup(self, name: str,
               level: Severity) -> tuple[float, int] | None:
        """Weight and category index, or ``None`` for unknown names."""
        return self.entries.get((name, level))


@dataclass(frozen=True)
class ResolverIndex:
    """Per-raw-event-name dispatch for fused period resolution.

    The hot path of the daily job resolves stateless events (the vast
    majority) straight from table rows to weighted intervals without
    materializing :class:`~repro.core.events.Event` or
    :class:`~repro.core.periods.EventPeriod` objects.  This index
    pre-answers, once per job, the two questions that loop would
    otherwise ask the catalog and weight config per event:

    * ``stateless`` — raw stateless name → ``(detection window,
      {int severity level: (weight, category index)})``;
    * ``stateful_names`` — every raw name (detail or logical) owned by
      a stateful spec; those events take the slow pairing path.

    Names in neither map are unknown and skipped, exactly like
    :func:`~repro.core.periods.resolve_periods`.
    """

    stateless: Mapping[str, tuple[float, Mapping[int, tuple[float, int]]]]
    stateful_names: frozenset[str]

    @classmethod
    def build(cls, catalog: EventCatalog,
              weight_table: WeightTable) -> "ResolverIndex":
        """Index every name of ``catalog`` against ``weight_table``."""
        stateless: dict[str, tuple[float, dict[int, tuple[float, int]]]] = {}
        stateful: set[str] = set()
        for spec in catalog:
            if spec.kind is EventKind.STATEFUL:
                stateful.add(spec.name)
                stateful.add(spec.start_name)
                stateful.add(spec.end_name)
                continue
            levels = {}
            for level in Severity:
                entry = weight_table.entries.get((spec.name, level))
                if entry is not None:
                    levels[int(level)] = entry
            stateless[spec.name] = (spec.window, levels)
        return cls(stateless=stateless, stateful_names=frozenset(stateful))


def grouped_damage_integrals(starts: np.ndarray, ends: np.ndarray,
                             weights: np.ndarray, group_ids: np.ndarray,
                             num_groups: int) -> np.ndarray:
    """Damage integral of every group in one vectorized sweep.

    Inputs are parallel arrays of already-clipped intervals: every
    entry must have ``end > start`` and ``weight > 0`` (callers filter
    exactly like :func:`~repro.core.indicator.damage_integral` does).
    Groups need not be sorted.  Returns ``num_groups`` integrals;
    groups with no intervals get ``0.0``.

    Algorithm: each interval contributes a ``+1`` boundary at its start
    and a ``-1`` at its end.  After a group-major time ``lexsort``,
    the per-level coverage of every inter-boundary segment is an exact
    integer cumsum (each group's deltas net to zero, so no cross-group
    correction is needed), and the per-segment max weight is filled in
    by walking the distinct weight levels in descending order — the
    grouped generalization of the quantized-weight decomposition in
    :func:`~repro.core.indicator.damage_integral_quantized`.  Summing
    ``max_weight * segment_length`` per group in index order
    (``np.bincount``) reproduces the reference heap sweep's float
    operations exactly.
    """
    starts = np.ascontiguousarray(starts, dtype=np.float64)
    ends = np.ascontiguousarray(ends, dtype=np.float64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    group_ids = np.ascontiguousarray(group_ids, dtype=np.int64)
    n = starts.size
    if n == 0:
        return np.zeros(num_groups, dtype=np.float64)

    # Boundary stream: (time, group, weight, coverage delta).
    times = np.concatenate((starts, ends))
    groups = np.concatenate((group_ids, group_ids))
    bweights = np.concatenate((weights, weights))
    deltas = np.concatenate(
        (np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64))
    )
    total = 2 * n
    # Group-major time sort.  ``lexsort`` is a stable mergesort per key;
    # packing (group, time-rank) into one int64 and quicksorting that is
    # ~5x faster at fleet sizes.  Time ranks break ties among equal
    # timestamps arbitrarily, which is harmless: equal-time boundaries
    # delimit zero-length segments whose products are exactly 0.0, and
    # coverage counts at any later segment are order-independent sums.
    if num_groups <= (2**62) // max(total, 1):
        time_rank = np.empty(total, dtype=np.int64)
        time_rank[np.argsort(times)] = np.arange(total, dtype=np.int64)
        order = np.argsort(groups * total + time_rank)
    else:  # pragma: no cover - astronomically many groups
        order = np.lexsort((times, groups))
    times = times[order]
    groups = groups[order]
    bweights = bweights[order]
    deltas = deltas[order]

    # Segment i spans [times[i], times[i+1]) and is valid only inside
    # one group; zero-length segments contribute an exact 0.0, matching
    # the reference's deduplicated boundary set.
    seg_len = np.zeros(total, dtype=np.float64)
    seg_len[:-1] = times[1:] - times[:-1]
    same_group = np.zeros(total, dtype=bool)
    same_group[:-1] = groups[1:] == groups[:-1]

    # Per-segment max active weight via descending weight levels: a
    # segment's max is the highest level with positive coverage.
    seg_max = np.zeros(total, dtype=np.float64)
    unset = np.ones(total, dtype=bool)
    for level in np.unique(weights)[::-1]:
        coverage = np.cumsum(np.where(bweights >= level, deltas, 0))
        hit = unset & (coverage > 0)
        seg_max[hit] = level
        unset &= ~hit
        if not unset.any():
            break

    products = np.where(same_group, seg_max * seg_len, 0.0)
    return np.bincount(groups, weights=products, minlength=num_groups)


@dataclass(frozen=True, slots=True)
class FleetTables:
    """Output of one fleet sweep: the two tables of the daily job."""

    vm_rows: list[dict]
    event_rows: list[dict]


@dataclass(frozen=True, slots=True)
class FleetColumns:
    """Column-major output of one fleet sweep.

    The same two tables as :class:`FleetTables` but as column value
    lists, already in the canonical output order (VMs sorted; event
    rows by ``(vm, event)``) — ready for a columnar partition write
    with no row-dict materialization in between.
    """

    vm_columns: dict[str, list]
    event_columns: dict[str, list]


#: Flat resolved interval: ``(name, weight, category index, start, end)``.
#: Plain tuples instead of :class:`~repro.core.periods.EventPeriod`
#: objects — at fleet scale the dataclass construction cost alone
#: dominates the kernel, so the hot path never materializes periods.
FlatInterval = tuple[str, float, int, float, float]


def fleet_cdi_tables(
    vm_periods: Sequence[tuple[str, Sequence[EventPeriod]]],
    services: Mapping[str, ServicePeriod],
    weight_table: WeightTable,
) -> FleetTables:
    """Both daily output tables from a single grouped kernel sweep.

    ``vm_periods`` holds the resolved event periods of every VM that
    had events; ``services`` maps VMs to their service periods.
    Periods whose name the weight table does not know are skipped,
    exactly like the reference calculator.  VMs without events are the
    caller's concern (they contribute zero rows without touching the
    kernel).
    """
    lookup = weight_table.entries.get
    vm_intervals: list[tuple[str, list[FlatInterval]]] = []
    for vm, periods in vm_periods:
        flat: list[FlatInterval] = []
        for period in periods:
            entry = lookup((period.name, period.level))
            if entry is not None:
                flat.append(
                    (period.name, entry[0], entry[1], period.start, period.end)
                )
        vm_intervals.append((vm, flat))
    return fleet_cdi_tables_flat(vm_intervals, services)


def fleet_cdi_tables_flat(
    vm_intervals: Sequence[tuple[str, Sequence[FlatInterval]]],
    services: Mapping[str, ServicePeriod],
) -> FleetTables:
    """Kernel assembly over already weight-resolved flat intervals.

    The per-VM sub-metric groups ``(vm, category)`` and the drill-down
    groups ``(vm, event_name)`` are concatenated into one group-id
    space so :func:`grouped_damage_integrals` runs exactly once.
    """
    starts: list[float] = []
    ends: list[float] = []
    interval_weights: list[float] = []
    cat_gids: list[int] = []
    name_gids: list[int] = []
    add_start = starts.append
    add_end = ends.append
    add_weight = interval_weights.append
    add_cat = cat_gids.append
    add_name = name_gids.append
    name_groups: list[tuple[int, str]] = []
    name_gid_of: dict[tuple[int, str], int] = {}
    register = name_groups.append

    vm_list: list[str] = []
    durations: list[float] = []
    for vm_index, (vm, flat) in enumerate(vm_intervals):
        vm_list.append(vm)
        service = services[vm]
        svc_start, svc_end = service.start, service.end
        durations.append(svc_end - svc_start)
        base = 3 * vm_index
        for name, weight, category_index, raw_start, raw_end in flat:
            # The drill-down row exists even when every occurrence
            # clips out of the service period (its CDI is then 0.0),
            # matching the reference per-name re-sweep.
            key = (vm_index, name)
            name_gid = name_gid_of.get(key)
            if name_gid is None:
                name_gid = len(name_groups)
                name_gid_of[key] = name_gid
                register(key)
            start = raw_start if raw_start > svc_start else svc_start
            end = raw_end if raw_end < svc_end else svc_end
            if end > start and weight > 0.0:
                add_start(start)
                add_end(end)
                add_weight(weight)
                add_cat(base + category_index)
                add_name(name_gid)

    return _fleet_tables_from_halves(
        vm_list, durations,
        np.array(starts, dtype=np.float64),
        np.array(ends, dtype=np.float64),
        np.array(interval_weights, dtype=np.float64),
        np.array(cat_gids, dtype=np.int64),
        np.array(name_gids, dtype=np.int64),
        name_groups,
    )


def fleet_cdi_columns_columnar(
    vm_list: Sequence[str],
    svc_starts: np.ndarray,
    svc_ends: np.ndarray,
    vm_idx: np.ndarray,
    name_ids: np.ndarray,
    names_list: Sequence[str],
    weights: np.ndarray,
    cats: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
) -> FleetColumns:
    """Array-native kernel assembly — the columnar daily path.

    Inputs are parallel arrays of weight-resolved, **unclipped**
    intervals straight out of the column-block resolution stage:
    ``vm_idx`` indexes into ``vm_list`` (every VM in service, sorted),
    ``name_ids`` into ``names_list`` (distinct resolved event names),
    and ``svc_starts``/``svc_ends`` are the per-VM service bounds
    aligned with ``vm_list``.  Clipping, drill-down group registration,
    and filtering are vectorized, and the output stays column-major end
    to end — no row dicts anywhere.  The table *values* are
    bit-identical to :func:`fleet_cdi_tables_flat`'s: the grouped
    kernel is insertion-order independent (reordering intervals only
    permutes zero-length boundary segments, whose products are exactly
    ``0.0``), the per-group normalizations are the same elementwise
    IEEE divisions, and the output orders are the same canonical sorts.
    """
    durations_arr = svc_ends - svc_starts
    durations = durations_arr.tolist()
    name_count = max(len(names_list), 1)
    # Drill-down groups exist for every resolved interval, clipped-out
    # or zero-weight occurrences included (their CDI is then 0.0) —
    # matching the reference per-name re-sweep.
    pair = vm_idx * name_count + name_ids
    uniq_pairs, name_gids_all = np.unique(pair, return_inverse=True)
    group_vms = uniq_pairs // name_count
    group_names = [names_list[i] for i in (uniq_pairs % name_count).tolist()]
    clipped_starts = np.maximum(starts, svc_starts[vm_idx])
    clipped_ends = np.minimum(ends, svc_ends[vm_idx])
    keep = (clipped_ends > clipped_starts) & (weights > 0.0)

    vm_count = len(vm_list)
    cat_group_count = 3 * vm_count
    integral_arr = _doubled_group_integrals(
        clipped_starts[keep], clipped_ends[keep],
        np.ascontiguousarray(weights, dtype=np.float64)[keep],
        3 * vm_idx[keep] + cats[keep],
        np.ascontiguousarray(name_gids_all, dtype=np.int64)[keep],
        cat_group_count, cat_group_count + len(uniq_pairs),
    )

    cat_cdi = integral_arr[:cat_group_count].reshape(vm_count, 3)
    cat_cdi = cat_cdi / durations_arr[:, None] if vm_count else cat_cdi
    vm_columns = {
        "vm": list(vm_list),
        "unavailability": cat_cdi[:, 0].tolist(),
        "performance": cat_cdi[:, 1].tolist(),
        "control_plane": cat_cdi[:, 2].tolist(),
        "service_time": durations,
    }

    if len(uniq_pairs):
        name_cdi = (integral_arr[cat_group_count:]
                    / durations_arr[group_vms]).tolist()
    else:
        name_cdi = []
    group_vm_list = group_vms.tolist()
    # Canonical event-table order: (vm, event) lexicographic.  vm_list
    # is sorted, so ordering by vm index == ordering by vm string; the
    # groups arrive sorted by (vm index, name *id*), which is not
    # alphabetical in the name — resort by the actual string.
    order = sorted(
        range(len(group_names)),
        key=lambda i: (group_vm_list[i], group_names[i]),
    )
    event_columns = {
        "vm": [vm_list[group_vm_list[i]] for i in order],
        "event": [group_names[i] for i in order],
        "cdi": [name_cdi[i] for i in order],
        "service_time": [durations[group_vm_list[i]] for i in order],
    }
    return FleetColumns(vm_columns=vm_columns, event_columns=event_columns)


def _doubled_group_integrals(
    half_starts: np.ndarray,
    half_ends: np.ndarray,
    half_weights: np.ndarray,
    cat_gids: np.ndarray,
    name_gids: np.ndarray,
    cat_group_count: int,
    num_groups: int,
) -> np.ndarray:
    """One kernel sweep over both group spaces of the fleet tables.

    Each interval participates in two groups — its (vm, category)
    sub-metric group and its (vm, event-name) drill-down group — so
    the coordinate arrays are doubled while the gid arrays differ
    (drill-down gids are offset past the category block).
    """
    starts_arr = np.concatenate((half_starts, half_starts))
    ends_arr = np.concatenate((half_ends, half_ends))
    weights_arr = np.concatenate((half_weights, half_weights))
    gids_arr = np.concatenate((cat_gids, name_gids + cat_group_count))
    return grouped_damage_integrals(
        starts_arr, ends_arr, weights_arr, gids_arr, num_groups
    )


def _fleet_tables_from_halves(
    vm_list: list[str],
    durations: list[float],
    half_starts: np.ndarray,
    half_ends: np.ndarray,
    half_weights: np.ndarray,
    cat_gids: np.ndarray,
    name_gids: np.ndarray,
    name_groups: list[tuple[int, str]],
) -> FleetTables:
    """Shared tail of the row-oriented fleet-table builders: one kernel
    sweep plus row assembly.  ``cat_gids``/``name_gids`` are the two
    group ids of each kept interval; ``name_groups`` maps drill-down
    group id → ``(vm index, event name)``."""
    vm_count = len(vm_list)
    cat_group_count = 3 * vm_count
    num_groups = cat_group_count + len(name_groups)
    integral_arr = _doubled_group_integrals(
        half_starts, half_ends, half_weights, cat_gids, name_gids,
        cat_group_count, num_groups,
    )

    # Normalize by service time in bulk (elementwise IEEE division is
    # identical to the reference's scalar divisions); tolist() yields
    # native Python floats so output rows carry the same value types
    # as the reference path.
    dur_arr = np.asarray(durations, dtype=np.float64)
    cat_cdi = integral_arr[:cat_group_count].reshape(vm_count, 3)
    cat_cdi = cat_cdi / dur_arr[:, None] if vm_count else cat_cdi
    vm_rows = [
        {
            "vm": vm,
            "unavailability": unavailability,
            "performance": performance,
            "control_plane": control_plane,
            "service_time": duration,
        }
        for vm, unavailability, performance, control_plane, duration in zip(
            vm_list, cat_cdi[:, 0].tolist(), cat_cdi[:, 1].tolist(),
            cat_cdi[:, 2].tolist(), durations,
        )
    ]

    if name_groups:
        group_vms = np.fromiter(
            (group[0] for group in name_groups),
            dtype=np.int64, count=len(name_groups),
        )
        name_cdi = (integral_arr[cat_group_count:] / dur_arr[group_vms]).tolist()
    else:
        name_cdi = []
    event_rows = [
        {
            "vm": vm_list[vm_index],
            "event": name,
            "cdi": cdi_value,
            "service_time": durations[vm_index],
        }
        for (vm_index, name), cdi_value in zip(name_groups, name_cdi)
    ]
    return FleetTables(vm_rows=vm_rows, event_rows=event_rows)


def damage_integrals_by_group(
    intervals: Iterable[tuple[int, float, float, float]],
    period_by_group: Mapping[int, ServicePeriod],
    num_groups: int,
) -> np.ndarray:
    """Convenience wrapper: clip ``(group, start, end, weight)`` tuples
    against per-group service periods, then run the kernel.

    Mainly used by tests and ad-hoc callers that already have flat
    tuples instead of :class:`~repro.core.periods.EventPeriod` objects.
    """
    gids: list[int] = []
    starts: list[float] = []
    ends: list[float] = []
    weights: list[float] = []
    for group, start, end, weight in intervals:
        service = period_by_group[group]
        clipped_start = start if start > service.start else service.start
        clipped_end = end if end < service.end else service.end
        if clipped_end > clipped_start and weight > 0.0:
            gids.append(group)
            starts.append(clipped_start)
            ends.append(clipped_end)
            weights.append(weight)
    return grouped_damage_integrals(
        np.asarray(starts), np.asarray(ends), np.asarray(weights),
        np.asarray(gids, dtype=np.int64), num_groups,
    )

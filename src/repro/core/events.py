"""Event model for the Comprehensive Damage Indicator (CDI).

Events are the interpretable intermediate representation produced by
CloudBot's Event Extractor (paper Section II-C, Table II).  An event
describes an anomalous objective phenomenon on a target (a VM or a
physical machine) and carries:

* ``name`` — interpretable name, e.g. ``slow_io``
* ``time`` — timestamp when the event was extracted (seconds)
* ``target`` — target identifier, e.g. a VM id
* ``expire_interval`` — seconds between extraction and expiration
* ``level`` — severity level (fatal, critical, warning, ...)

The CDI computation (Section IV) consumes events reduced to weighted
intervals ``e = (t_s, t_e, w)``; that reduction lives in
:mod:`repro.core.periods` and :mod:`repro.core.weights`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping


class EventCategory(enum.Enum):
    """The three stability-issue categories of Definition 1.

    * ``UNAVAILABILITY`` — the VM is completely unable to provide
      computational services (crash, stall).
    * ``PERFORMANCE`` — the VM is available but performs below
      expectations (slow cloud-disk IO, packet loss, ...).
    * ``CONTROL_PLANE`` — control operations on the VM fail (start,
      stop, release, resize).
    """

    UNAVAILABILITY = "unavailability"
    PERFORMANCE = "performance"
    CONTROL_PLANE = "control_plane"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Severity(enum.IntEnum):
    """Expert-assigned severity levels in increasing order.

    The paper (Section IV-C) assumes ``m`` levels of increasing
    severity; the integer value of each member is its 1-based rank
    ``i`` so the expert weight is ``i / m`` (Formula 1).
    """

    INFO = 1
    WARNING = 2
    CRITICAL = 3
    FATAL = 4

    @classmethod
    def count(cls) -> int:
        """Number of defined severity levels (``m`` in Formula 1)."""
        return len(cls)

    @property
    def rank(self) -> int:
        """1-based severity rank ``i``."""
        return int(self)


class EventKind(enum.Enum):
    """Period semantics of an event name (Section IV-B).

    * ``STATELESS`` — a single event represents one complete issue;
      its period is derived from a duration or detection window.
    * ``STATEFUL`` — the issue is represented by paired detail events
      (e.g. ``ddos_blackhole_add`` / ``ddos_blackhole_del``).
    """

    STATELESS = "stateless"
    STATEFUL = "stateful"


class InvalidEventError(ValueError):
    """Raised when an event violates basic field constraints."""


@dataclass(frozen=True, slots=True)
class Event:
    """A raw extracted event (paper Table II).

    ``attributes`` carries extractor-specific extras, e.g. a measured
    ``duration`` in seconds for events whose logs record the impact
    duration precisely (like ``qemu_live_upgrade``).
    """

    name: str
    time: float
    target: str
    expire_interval: float = 3600.0
    level: Severity = Severity.WARNING
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidEventError("event name must be non-empty")
        if not self.target:
            raise InvalidEventError("event target must be non-empty")
        if self.expire_interval < 0:
            raise InvalidEventError(
                f"expire_interval must be >= 0, got {self.expire_interval}"
            )

    @property
    def expires_at(self) -> float:
        """Timestamp after which the event is no longer considered."""
        return self.time + self.expire_interval

    def is_expired(self, now: float) -> bool:
        """Whether the event has expired at time ``now``."""
        return now > self.expires_at

    def duration_hint(self) -> float | None:
        """Measured impact duration attached by the extractor, if any."""
        value = self.attributes.get("duration")
        return float(value) if value is not None else None


@dataclass(frozen=True, slots=True)
class EventSpec:
    """Catalog entry describing the semantics of one event name.

    Parameters mirror Section IV-B:

    * stateless events either carry a measured duration per event or
      fall back to ``window`` (the detection window, e.g. 60 s);
    * stateful events name their paired detail events via
      ``start_name`` / ``end_name``.
    """

    name: str
    category: EventCategory
    kind: EventKind = EventKind.STATELESS
    window: float = 60.0
    default_level: Severity = Severity.WARNING
    expire_interval: float = 3600.0
    start_name: str | None = None
    end_name: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind is EventKind.STATEFUL:
            if not (self.start_name and self.end_name):
                raise InvalidEventError(
                    f"stateful event {self.name!r} needs start_name and end_name"
                )
        if self.window <= 0:
            raise InvalidEventError(
                f"window must be > 0 for {self.name!r}, got {self.window}"
            )


class EventCatalog:
    """Registry of event specs keyed by event name.

    The catalog resolves both logical names (``ddos_blackhole``) and
    detail names (``ddos_blackhole_add``) so the period resolver can
    group raw detail events under their logical stateful event.
    """

    def __init__(self, specs: Iterable[EventSpec] = ()) -> None:
        self._specs: dict[str, EventSpec] = {}
        self._detail_to_logical: dict[str, str] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: EventSpec) -> None:
        """Add ``spec``; re-registering a name replaces the old spec."""
        old = self._specs.get(spec.name)
        if old is not None and old.kind is EventKind.STATEFUL:
            self._detail_to_logical.pop(old.start_name, None)
            self._detail_to_logical.pop(old.end_name, None)
        self._specs[spec.name] = spec
        if spec.kind is EventKind.STATEFUL:
            assert spec.start_name and spec.end_name
            self._detail_to_logical[spec.start_name] = spec.name
            self._detail_to_logical[spec.end_name] = spec.name

    def get(self, name: str) -> EventSpec:
        """Spec for ``name``; raises ``KeyError`` for unknown names."""
        return self._specs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[EventSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        """All registered logical event names."""
        return list(self._specs)

    def logical_name(self, raw_name: str) -> str | None:
        """Logical event name for a raw event name.

        For a detail event name (``ddos_blackhole_add``) this is the
        owning stateful name; for a registered logical name it is the
        name itself; otherwise ``None``.
        """
        if raw_name in self._specs:
            return raw_name
        return self._detail_to_logical.get(raw_name)

    def category_of(self, raw_name: str) -> EventCategory | None:
        """Category of a raw event name, resolving detail names."""
        logical = self.logical_name(raw_name)
        if logical is None:
            return None
        return self._specs[logical].category

    def by_category(self, category: EventCategory) -> list[EventSpec]:
        """All specs belonging to ``category``."""
        return [s for s in self._specs.values() if s.category is category]


def default_catalog() -> EventCatalog:
    """The event catalog used throughout the paper's examples.

    Covers every event name mentioned in the paper plus the synthetic
    events produced by the telemetry simulator.  Durations are the
    detection windows discussed in Section IV-B (most metric-driven
    events use a one-minute window).
    """
    minute = 60.0
    c = EventCategory
    s = Severity
    specs = [
        # --- unavailability -------------------------------------------------
        EventSpec("vm_down", c.UNAVAILABILITY, window=minute,
                  default_level=s.FATAL, description="VM crashed"),
        EventSpec("vm_hang", c.UNAVAILABILITY, window=minute,
                  default_level=s.FATAL, description="VM stalled"),
        EventSpec("nc_down", c.UNAVAILABILITY, window=minute,
                  default_level=s.FATAL, description="host NC failure"),
        EventSpec("qemu_live_upgrade", c.UNAVAILABILITY, window=0.2,
                  default_level=s.WARNING,
                  description="live QEMU upgrade; logs record exact ms"),
        EventSpec("ddos_blackhole", c.UNAVAILABILITY, kind=EventKind.STATEFUL,
                  start_name="ddos_blackhole_add", end_name="ddos_blackhole_del",
                  default_level=s.FATAL,
                  description="traffic blackholed during DDoS mitigation"),
        # --- performance ----------------------------------------------------
        EventSpec("slow_io", c.PERFORMANCE, window=minute,
                  default_level=s.CRITICAL,
                  description="cloud-disk read latency over threshold"),
        EventSpec("packet_loss", c.PERFORMANCE, window=minute,
                  default_level=s.WARNING, description="network packet loss"),
        EventSpec("vcpu_high", c.PERFORMANCE, window=minute,
                  default_level=s.CRITICAL, description="vCPU steal/contention"),
        EventSpec("nic_flapping", c.PERFORMANCE, window=minute,
                  default_level=s.CRITICAL, description="NIC link up/down"),
        EventSpec("gpu_drop", c.PERFORMANCE, window=minute,
                  default_level=s.FATAL, description="GPU dropped from bus"),
        EventSpec("mem_bandwidth_low", c.PERFORMANCE, window=minute,
                  default_level=s.WARNING, description="memory bandwidth drop"),
        EventSpec("cpu_freq_capped", c.PERFORMANCE, window=minute,
                  default_level=s.WARNING, description="TDP frequency capping"),
        EventSpec("inspect_cpu_power_tdp", c.PERFORMANCE, window=minute,
                  default_level=s.WARNING,
                  description="CPU power near/over TDP (Case 7)"),
        EventSpec("vm_allocation_failed", c.PERFORMANCE, window=minute,
                  default_level=s.CRITICAL,
                  description="VM got fewer exclusive cores than requested"),
        # --- control plane --------------------------------------------------
        EventSpec("vm_start_failed", c.CONTROL_PLANE, window=minute,
                  default_level=s.CRITICAL, description="VM start API failed"),
        EventSpec("vm_stop_failed", c.CONTROL_PLANE, window=minute,
                  default_level=s.CRITICAL, description="VM stop API failed"),
        EventSpec("vm_release_failed", c.CONTROL_PLANE, window=minute,
                  default_level=s.CRITICAL, description="VM release API failed"),
        EventSpec("vm_resize_failed", c.CONTROL_PLANE, window=minute,
                  default_level=s.WARNING, description="VM resize API failed"),
        EventSpec("console_unreachable", c.CONTROL_PLANE, window=minute,
                  default_level=s.CRITICAL, description="console login failure"),
        EventSpec("api_error", c.CONTROL_PLANE, window=minute,
                  default_level=s.CRITICAL, description="management API error"),
        EventSpec("monitoring_lost", c.CONTROL_PLANE, window=minute,
                  default_level=s.WARNING, description="metric stream lost"),
    ]
    return EventCatalog(specs)

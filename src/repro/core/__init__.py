"""Core CDI library: the paper's primary contribution.

Public surface:

* :mod:`repro.core.events` — event model and catalog (Table II)
* :mod:`repro.core.periods` — period resolution (Section IV-B)
* :mod:`repro.core.ahp` / :mod:`repro.core.weights` — event weights
  (Section IV-C)
* :mod:`repro.core.indicator` — Algorithm 1 and Formula 4
  (Section IV-D)
* :mod:`repro.core.baselines` — Downtime Percentage, AIR, MTBF/MTTR
* :mod:`repro.core.customer` — Customer-Perspective Indicator
  (Section VIII-B)
"""

from repro.core.baselines import (
    ReliabilityFigures,
    annual_interruption_rate,
    downtime_percentage,
    interruption_count,
    reliability_figures,
)
from repro.core.customer import (
    DEFAULT_DISCLOSED_EVENTS,
    CustomerPerspectiveCalculator,
)
from repro.core.events import (
    Event,
    EventCatalog,
    EventCategory,
    EventKind,
    EventSpec,
    InvalidEventError,
    Severity,
    default_catalog,
)
from repro.core.indicator import (
    CdiCalculator,
    CdiReport,
    ServicePeriod,
    WeightedInterval,
    aggregate,
    aggregate_reports,
    cdi,
    cdi_slotted,
    damage_integral,
    damage_integral_quantized,
)
from repro.core.profiles import (
    ProfiledCdiCalculator,
    ProfiledWeightConfig,
    ScenarioProfile,
    batch_compute_profile,
    redis_profile,
)
from repro.core.periods import (
    EventPeriod,
    UnpairedPolicy,
    dedupe_consecutive,
    pair_stateful,
    resolve_periods,
    resolve_stateless,
)
from repro.core.weights import (
    WeightConfig,
    build_weight_config,
    customer_level_weight,
    customer_levels_from_ticket_counts,
    expert_level_weight,
    expert_only_config,
    fuse_weights,
)

__all__ = [
    "DEFAULT_DISCLOSED_EVENTS",
    "CdiCalculator",
    "CdiReport",
    "CustomerPerspectiveCalculator",
    "Event",
    "EventCatalog",
    "EventCategory",
    "EventKind",
    "EventPeriod",
    "EventSpec",
    "InvalidEventError",
    "ProfiledCdiCalculator",
    "ProfiledWeightConfig",
    "ReliabilityFigures",
    "ScenarioProfile",
    "ServicePeriod",
    "Severity",
    "UnpairedPolicy",
    "WeightConfig",
    "WeightedInterval",
    "aggregate",
    "aggregate_reports",
    "annual_interruption_rate",
    "batch_compute_profile",
    "build_weight_config",
    "cdi",
    "cdi_slotted",
    "customer_level_weight",
    "customer_levels_from_ticket_counts",
    "damage_integral",
    "damage_integral_quantized",
    "dedupe_consecutive",
    "default_catalog",
    "downtime_percentage",
    "expert_level_weight",
    "expert_only_config",
    "fuse_weights",
    "interruption_count",
    "pair_stateful",
    "redis_profile",
    "reliability_figures",
    "resolve_periods",
    "resolve_stateless",
]

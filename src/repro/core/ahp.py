"""Analytic Hierarchy Process (AHP) used to fuse weight perspectives.

The paper (Section IV-C) combines the expert-perceived severity weight
and the customer-perceived (ticket-derived) weight with proportions
``alpha_1`` / ``alpha_2`` obtained from an AHP judgment matrix.  This
module implements the standard AHP machinery:

* reciprocal pairwise judgment matrices on the Saaty 1-9 scale,
* priority vector via the principal eigenvector,
* consistency index / consistency ratio validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

# Saaty's random consistency index, indexed by matrix order n (0-based
# entries for n = 1..15).  Orders 1 and 2 are always consistent.
_RANDOM_INDEX = (
    0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41,
    1.45, 1.49, 1.51, 1.48, 1.56, 1.57, 1.59,
)

#: Conventional acceptance threshold for the consistency ratio.
CONSISTENCY_THRESHOLD = 0.1


class InconsistentJudgmentError(ValueError):
    """Raised when a judgment matrix fails the consistency-ratio check."""


@dataclass(frozen=True, slots=True)
class AhpResult:
    """Outcome of an AHP priority computation.

    ``weights`` sum to 1 and follow the order of the input criteria.
    """

    weights: tuple[float, ...]
    lambda_max: float
    consistency_index: float
    consistency_ratio: float

    @property
    def is_consistent(self) -> bool:
        """Whether CR is within the conventional 0.1 threshold."""
        return self.consistency_ratio <= CONSISTENCY_THRESHOLD


def validate_judgment_matrix(matrix: np.ndarray, *, atol: float = 1e-9) -> None:
    """Check that ``matrix`` is a square positive reciprocal matrix.

    Raises ``ValueError`` describing the first violation found.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"judgment matrix must be square, got {matrix.shape}")
    if matrix.shape[0] < 1:
        raise ValueError("judgment matrix must have at least one criterion")
    if np.any(matrix <= 0):
        raise ValueError("judgment matrix entries must be strictly positive")
    if not np.allclose(np.diag(matrix), 1.0, atol=atol):
        raise ValueError("judgment matrix diagonal must be all ones")
    if not np.allclose(matrix * matrix.T, 1.0, atol=1e-6):
        raise ValueError("judgment matrix must be reciprocal: a_ij * a_ji = 1")


def priority_vector(matrix: Sequence[Sequence[float]] | np.ndarray,
                    *, check_consistency: bool = True) -> AhpResult:
    """Priority weights of a pairwise judgment matrix.

    Uses the principal (Perron) eigenvector, normalized to sum to 1.
    When ``check_consistency`` is set, a consistency ratio above 0.1
    raises :class:`InconsistentJudgmentError` — the paper relies on
    AHP's consistency check to keep expert judgments sane.
    """
    m = np.asarray(matrix, dtype=float)
    validate_judgment_matrix(m)
    n = m.shape[0]

    eigenvalues, eigenvectors = np.linalg.eig(m)
    principal = int(np.argmax(eigenvalues.real))
    lambda_max = float(eigenvalues[principal].real)
    vector = np.abs(eigenvectors[:, principal].real)
    weights = vector / vector.sum()

    if n <= 2:
        ci = 0.0
        cr = 0.0
    else:
        ci = (lambda_max - n) / (n - 1)
        ri = _RANDOM_INDEX[n - 1] if n <= len(_RANDOM_INDEX) else _RANDOM_INDEX[-1]
        cr = ci / ri

    result = AhpResult(
        weights=tuple(float(w) for w in weights),
        lambda_max=lambda_max,
        consistency_index=float(ci),
        consistency_ratio=float(cr),
    )
    if check_consistency and not result.is_consistent:
        raise InconsistentJudgmentError(
            f"judgment matrix consistency ratio {cr:.3f} exceeds "
            f"{CONSISTENCY_THRESHOLD}; revise the pairwise comparisons"
        )
    return result


def judgment_matrix_from_comparisons(
    criteria: Sequence[str],
    comparisons: dict[tuple[str, str], float],
) -> np.ndarray:
    """Build a reciprocal judgment matrix from sparse comparisons.

    ``comparisons[(a, b)] = 3`` means criterion ``a`` is moderately
    more important than ``b`` on the Saaty scale.  Missing pairs
    default to equal importance (1).  Reciprocals are filled in
    automatically; providing both ``(a, b)`` and ``(b, a)`` with
    non-reciprocal values raises ``ValueError``.
    """
    index = {name: i for i, name in enumerate(criteria)}
    if len(index) != len(criteria):
        raise ValueError("criteria names must be unique")
    n = len(criteria)
    matrix = np.ones((n, n), dtype=float)
    for (a, b), value in comparisons.items():
        if a not in index or b not in index:
            raise KeyError(f"unknown criterion in comparison ({a!r}, {b!r})")
        if value <= 0:
            raise ValueError(f"comparison value must be positive, got {value}")
        i, j = index[a], index[b]
        if i == j:
            if value != 1:
                raise ValueError(f"self comparison of {a!r} must be 1")
            continue
        if (b, a) in comparisons:
            other = comparisons[(b, a)]
            if abs(value * other - 1.0) > 1e-9:
                raise ValueError(
                    f"comparisons ({a!r},{b!r})={value} and "
                    f"({b!r},{a!r})={other} are not reciprocal"
                )
        matrix[i, j] = value
        matrix[j, i] = 1.0 / value
    return matrix


def two_perspective_alphas(expert_vs_customer: float = 1.0) -> tuple[float, float]:
    """Convenience AHP for the paper's two weight perspectives.

    ``expert_vs_customer`` is the Saaty judgment of how much more
    important the expert severity perspective is than the customer
    ticket perspective.  Equal importance (the paper's Example 3 uses
    ``alpha_1 = alpha_2 = 0.5``) is the default.
    """
    matrix = judgment_matrix_from_comparisons(
        ("expert", "customer"), {("expert", "customer"): expert_vs_customer}
    )
    result = priority_vector(matrix)
    return result.weights[0], result.weights[1]

"""Customer-Perspective Indicator (paper Section VIII-B, future work).

ECS instance health diagnosis discloses a *subset* of system events to
customers.  The Customer-Perspective Indicator reuses the exact CDI
framework but restricts the input to that disclosed subset, producing
a stability figure a customer could compute for their own fleet.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.events import EventCatalog
from repro.core.indicator import (
    CdiCalculator,
    CdiReport,
    ServicePeriod,
    aggregate_reports,
)
from repro.core.periods import EventPeriod
from repro.core.weights import WeightConfig

#: Default event subset disclosed through instance health diagnosis.
#: Infrastructure-internal events (NC-level, power, scheduling) stay
#: hidden; customer-visible symptoms are disclosed.
DEFAULT_DISCLOSED_EVENTS = frozenset({
    "vm_down",
    "vm_hang",
    "slow_io",
    "packet_loss",
    "nic_flapping",
    "vm_start_failed",
    "vm_stop_failed",
    "vm_release_failed",
    "vm_resize_failed",
})


class CustomerPerspectiveCalculator:
    """CDI restricted to the customer-disclosed event subset."""

    def __init__(self, catalog: EventCatalog, weights: WeightConfig,
                 disclosed: Iterable[str] = DEFAULT_DISCLOSED_EVENTS) -> None:
        self._disclosed = frozenset(disclosed)
        unknown = [name for name in self._disclosed if name not in catalog]
        if unknown:
            raise KeyError(f"disclosed events not in catalog: {sorted(unknown)}")
        self._inner = CdiCalculator(catalog, weights)

    @property
    def disclosed(self) -> frozenset[str]:
        """Event names visible to the customer."""
        return self._disclosed

    def filter_periods(self, periods: Iterable[EventPeriod]) -> list[EventPeriod]:
        """Drop event periods the customer cannot see."""
        return [p for p in periods if p.name in self._disclosed]

    def vm_report(self, periods: Iterable[EventPeriod],
                  service: ServicePeriod) -> CdiReport:
        """Customer-visible sub-metrics of one VM."""
        return self._inner.vm_report(self.filter_periods(periods), service)

    def fleet_report(
        self,
        vms: Mapping[str, tuple[Sequence[EventPeriod], ServicePeriod]],
    ) -> CdiReport:
        """Formula 4 aggregation over the customer's VMs."""
        reports = [
            self.vm_report(periods, service) for periods, service in vms.values()
        ]
        return aggregate_reports(reports)

"""Event period resolution (paper Section IV-B, Example 2).

The CDI computation consumes *weighted intervals* ``(t_s, t_e, w)``.
This module derives the ``(t_s, t_e)`` part from raw extracted events:

* **Stateless** events represent one complete issue each.  The event
  timestamp is the end time; the start time is traced backward by the
  measured duration (when the extractor attached one) or by the
  detection window of the event name.
* **Stateful** events are reconstructed from paired detail events
  (``*_add`` / ``*_del``).  Consecutive duplicates keep only the
  earliest occurrence, and each start is paired with the nearest
  subsequent end (Example 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.events import Event, EventCatalog, EventKind, EventSpec, Severity


@dataclass(frozen=True, slots=True)
class EventPeriod:
    """A resolved event occurrence with explicit start/end times.

    This is the ``e = (t_s, t_e, ·)`` representation of Section IV-A
    before a weight is attached; ``name``/``target``/``level`` are kept
    so the weight resolver and drill-down views can key off them.
    """

    name: str
    target: str
    start: float
    end: float
    level: Severity = Severity.WARNING

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"event period ends before it starts: [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        """Length of the period in seconds."""
        return self.end - self.start

    def overlaps(self, other: "EventPeriod") -> bool:
        """Whether two periods share a segment of positive length."""
        return self.start < other.end and other.start < self.end


class UnpairedPolicy:
    """How to treat a stateful start event with no matching end.

    * ``DROP`` — discard the open occurrence (strictest; dirty data).
    * ``CLIP`` — close the occurrence at the observation horizon,
      which matches production behaviour where an issue that is still
      open at the end of the daily window counts up to the window end.
    """

    DROP = "drop"
    CLIP = "clip"


def resolve_stateless(event: Event, spec: EventSpec) -> EventPeriod:
    """Period of a stateless event (Section IV-B1).

    The event's timestamp is its end time.  The start time is traced
    backward by the measured duration when present (e.g.
    ``qemu_live_upgrade`` logs record the impact in milliseconds) and
    by the spec's detection window otherwise (e.g. ``slow_io`` with a
    one-minute window).
    """
    duration = event.duration_hint()
    if duration is None:
        duration = spec.window
    if duration < 0:
        raise ValueError(f"negative duration {duration} on event {event.name!r}")
    return EventPeriod(
        name=event.name,
        target=event.target,
        start=event.time - duration,
        end=event.time,
        level=event.level,
    )


def dedupe_consecutive(events: Sequence[Event]) -> list[Event]:
    """Keep only the earliest of consecutive same-name occurrences.

    Mitigates dirty data in stateful detail streams (Section IV-B2):
    among all consecutive occurrences of the same detail event, only
    the earliest timestamp is preserved, ensuring every start event can
    be paired with a unique end event.

    ``events`` must belong to a single (target, logical event) stream
    and be sorted by time.
    """
    kept: list[Event] = []
    for event in events:
        if kept and kept[-1].name == event.name:
            continue
        kept.append(event)
    return kept


def pair_stateful(
    events: Sequence[Event],
    spec: EventSpec,
    *,
    horizon: float | None = None,
    unpaired: str = UnpairedPolicy.CLIP,
) -> list[EventPeriod]:
    """Reconstruct stateful event periods from detail events.

    ``events`` are raw detail events (mixed ``start_name`` and
    ``end_name`` occurrences) for a single target.  They are sorted,
    deduplicated, and each start is paired with the nearest subsequent
    end (Example 2).  A leading end with no prior start is dropped as
    dirty data.  A trailing open start follows ``unpaired``: clipped to
    ``horizon`` or dropped.
    """
    if spec.kind is not EventKind.STATEFUL:
        raise ValueError(f"{spec.name!r} is not a stateful event spec")
    relevant = [e for e in events if e.name in (spec.start_name, spec.end_name)]
    relevant.sort(key=lambda e: (e.time, e.name != spec.start_name))
    relevant = dedupe_consecutive(relevant)

    periods: list[EventPeriod] = []
    open_start: Event | None = None
    for event in relevant:
        if event.name == spec.start_name:
            # dedupe_consecutive guarantees alternation, so a start here
            # always finds open_start is None.
            open_start = event
        else:
            if open_start is None:
                continue  # end without start: dirty data, drop
            periods.append(
                EventPeriod(
                    name=spec.name,
                    target=event.target,
                    start=open_start.time,
                    end=event.time,
                    level=open_start.level,
                )
            )
            open_start = None

    if open_start is not None and unpaired == UnpairedPolicy.CLIP:
        end = horizon if horizon is not None else open_start.time
        if end >= open_start.time:
            periods.append(
                EventPeriod(
                    name=spec.name,
                    target=open_start.target,
                    start=open_start.time,
                    end=end,
                    level=open_start.level,
                )
            )
    return periods


def resolve_periods(
    events: Iterable[Event],
    catalog: EventCatalog,
    *,
    horizon: float | None = None,
    unpaired: str = UnpairedPolicy.CLIP,
    strict: bool = False,
) -> list[EventPeriod]:
    """Resolve a mixed raw event stream into event periods.

    Stateless events map one-to-one; stateful detail events are grouped
    per (target, logical name) and paired.  Unknown event names are
    skipped unless ``strict`` is true.
    """
    stateless: list[EventPeriod] = []
    stateful_groups: dict[tuple[str, str], list[Event]] = {}
    for event in events:
        logical = catalog.logical_name(event.name)
        if logical is None:
            if strict:
                raise KeyError(f"unknown event name {event.name!r}")
            continue
        spec = catalog.get(logical)
        if spec.kind is EventKind.STATELESS:
            stateless.append(resolve_stateless(event, spec))
        else:
            stateful_groups.setdefault((event.target, logical), []).append(event)

    periods = stateless
    for (_, logical), group in stateful_groups.items():
        spec = catalog.get(logical)
        periods.extend(
            pair_stateful(group, spec, horizon=horizon, unpaired=unpaired)
        )
    periods.sort(key=lambda p: (p.target, p.start, p.end, p.name))
    return periods

"""Business-scenario profiles (paper Section VIII-A, generality).

The CDI's events are designed for generic use but "can be customized
for particular scenarios via configuration adjustment" — the paper's
example: Redis instances are network-sensitive, so their network
events deserve a higher warning level.  A :class:`ScenarioProfile`
captures such adjustments declaratively:

* per-event severity overrides (raise ``packet_loss`` to CRITICAL for
  latency-sensitive workloads);
* per-event weight multipliers (bounded to keep weights in (0, 1]);
* event exclusions (a batch workload may not care about
  ``console_unreachable`` at all).

Profiles wrap a base :class:`~repro.core.weights.WeightConfig` and the
period stream, so the same CDI machinery evaluates any workload type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.events import EventCatalog, EventCategory, Severity
from repro.core.indicator import CdiCalculator, CdiReport, ServicePeriod
from repro.core.periods import EventPeriod
from repro.core.weights import WeightConfig


@dataclass(frozen=True, slots=True)
class ScenarioProfile:
    """Declarative per-workload event customization."""

    name: str
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    weight_multipliers: Mapping[str, float] = field(default_factory=dict)
    excluded_events: frozenset[str] = frozenset()
    description: str = ""

    def __post_init__(self) -> None:
        for event, multiplier in self.weight_multipliers.items():
            if multiplier <= 0:
                raise ValueError(
                    f"weight multiplier for {event!r} must be > 0, "
                    f"got {multiplier}"
                )

    def validate_against(self, catalog: EventCatalog) -> None:
        """Ensure every referenced event name exists in the catalog."""
        referenced = (
            set(self.severity_overrides)
            | set(self.weight_multipliers)
            | set(self.excluded_events)
        )
        unknown = sorted(
            name for name in referenced if catalog.logical_name(name) is None
        )
        if unknown:
            raise KeyError(
                f"profile {self.name!r} references unknown events: {unknown}"
            )

    def adjust_period(self, period: EventPeriod) -> EventPeriod | None:
        """Apply exclusions and severity overrides to one period."""
        if period.name in self.excluded_events:
            return None
        override = self.severity_overrides.get(period.name)
        if override is None or override is period.level:
            return period
        return EventPeriod(name=period.name, target=period.target,
                           start=period.start, end=period.end,
                           level=override)


class ProfiledWeightConfig(WeightConfig):
    """A weight config with per-event profile multipliers applied.

    Multiplied weights are clamped to (0, 1] so Algorithm 1's weight
    invariant holds regardless of profile configuration.
    """

    # WeightConfig is a frozen slots dataclass; subclass with its own
    # storage for the profile.
    def __init__(self, base: WeightConfig, profile: ScenarioProfile) -> None:
        super().__init__(
            alpha_expert=base.alpha_expert,
            alpha_customer=base.alpha_customer,
            expert_levels=base.expert_levels,
            customer_levels=base.customer_levels,
            customer_level_by_name=base.customer_level_by_name,
            unavailability_full_weight=base.unavailability_full_weight,
        )
        object.__setattr__(self, "_profile", profile)

    def resolve(self, name: str, level: Severity,
                category: EventCategory | None = None) -> float:
        weight = super().resolve(name, level, category)
        multiplier = self._profile.weight_multipliers.get(name)
        if multiplier is None:
            return weight
        return min(1.0, weight * multiplier)


class ProfiledCdiCalculator:
    """CDI evaluation under a scenario profile."""

    def __init__(self, catalog: EventCatalog, weights: WeightConfig,
                 profile: ScenarioProfile) -> None:
        profile.validate_against(catalog)
        self.profile = profile
        self._inner = CdiCalculator(
            catalog, ProfiledWeightConfig(weights, profile)
        )

    def vm_report(self, periods: Iterable[EventPeriod],
                  service: ServicePeriod) -> CdiReport:
        """Sub-metrics of one VM with profile adjustments applied."""
        adjusted = [
            adjusted_period
            for period in periods
            if (adjusted_period := self.profile.adjust_period(period))
            is not None
        ]
        return self._inner.vm_report(adjusted, service)


def redis_profile() -> ScenarioProfile:
    """The paper's worked example: network-sensitive Redis instances."""
    return ScenarioProfile(
        name="redis",
        severity_overrides={
            "packet_loss": Severity.CRITICAL,
            "nic_flapping": Severity.FATAL,
        },
        weight_multipliers={"packet_loss": 1.5, "nic_flapping": 1.3},
        description="latency-sensitive in-memory store: network "
                    "fluctuations hit hard",
    )


def batch_compute_profile() -> ScenarioProfile:
    """A throughput-oriented batch workload: latency blips are noise."""
    return ScenarioProfile(
        name="batch_compute",
        severity_overrides={"packet_loss": Severity.INFO},
        weight_multipliers={"slow_io": 0.5},
        excluded_events=frozenset({"console_unreachable"}),
        description="interruptible batch compute: only sustained damage "
                    "matters",
    )

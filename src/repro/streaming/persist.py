"""Durable stream checkpoints in the v3 chunked table-store format.

One atomic file holds everything a crashed streaming loop needs to
resume exactly: the tailer cursor + watermark + counters, the ordered
log of every applied events-table row (replayed through a fresh
:class:`~repro.streaming.state.IncrementalCdiState` on resume), and
the reordering buffer's pending records.  The file is a regular
:func:`~repro.storage.persistence.save_table_store` v3 chunked store
written atomically (temp + fsync + rename), so a kill mid-save leaves
the previous checkpoint intact and a reader never observes a torn
file — the same durability protocol as the batch job checkpoints.

A ``fingerprint`` column ties the checkpoint to its stream's inputs
(partition, services, weight-config version, lateness); resuming
against a different stream raises instead of silently merging state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.pipeline.tables import events_schema
from repro.storage.logstore import LogEntry
from repro.storage.persistence import load_table_store, save_table_store
from repro.storage.schema import Column, Schema
from repro.storage.table import TableStore

#: Table names inside a checkpoint store.
CURSOR_TABLE = "stream_cursor"
ROWS_TABLE = "stream_rows"
BUFFER_TABLE = "stream_buffer"

#: Single partition every checkpoint table writes into.
STATE_PARTITION = "state"


def cursor_schema() -> Schema:
    """One-row table: tailer cursor, watermark, and loop counters."""
    return Schema([
        Column("fingerprint", str),
        Column("last_seq", int),
        Column("watermark", float, nullable=True),
        Column("ticks", int),
        Column("consumed", int),
        Column("late_dropped", int),
        Column("ignored", int),
    ])


def buffer_schema() -> Schema:
    """Pending reordering-buffer records: seq, time, JSON fields."""
    return Schema([
        Column("seq", int),
        Column("time", float),
        Column("fields", str),
    ])


@dataclass(frozen=True, slots=True)
class StreamSnapshot:
    """Everything one resumable point-in-time of the stream holds."""

    fingerprint: str
    last_seq: int
    watermark: float | None
    ticks: int
    consumed: int
    late_dropped: int
    ignored: int
    rows: list[dict[str, Any]]
    buffer: list[tuple[int, LogEntry]]


class StreamCheckpoint:
    """Atomic save/load of :class:`StreamSnapshot` at one path."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """The checkpoint file location."""
        return self._path

    def exists(self) -> bool:
        """Whether a checkpoint file is present."""
        return self._path.exists()

    def save(self, snapshot: StreamSnapshot) -> None:
        """Write the snapshot atomically (fsync + rename)."""
        store = TableStore()
        cursor = store.create(CURSOR_TABLE, cursor_schema())
        cursor.append([{
            "fingerprint": snapshot.fingerprint,
            "last_seq": snapshot.last_seq,
            "watermark": snapshot.watermark,
            "ticks": snapshot.ticks,
            "consumed": snapshot.consumed,
            "late_dropped": snapshot.late_dropped,
            "ignored": snapshot.ignored,
        }], STATE_PARTITION)
        rows = store.create(ROWS_TABLE, events_schema())
        if snapshot.rows:
            rows.append(
                [dict(row) for row in snapshot.rows], STATE_PARTITION
            )
        buffer = store.create(BUFFER_TABLE, buffer_schema())
        if snapshot.buffer:
            buffer.append([
                {
                    "seq": seq,
                    "time": entry.time,
                    "fields": json.dumps(
                        dict(entry.fields), sort_keys=True
                    ),
                }
                for seq, entry in snapshot.buffer
            ], STATE_PARTITION)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        save_table_store(
            store, self._path, layout="chunked", atomic=True
        )

    def load(self) -> StreamSnapshot | None:
        """Read the latest snapshot, or ``None`` if none was saved."""
        if not self._path.exists():
            return None
        store = load_table_store(self._path)
        cursor_rows = store.get(CURSOR_TABLE).rows(
            partition=STATE_PARTITION
        )
        if len(cursor_rows) != 1:
            raise ValueError(
                f"corrupt stream checkpoint {self._path}: expected one "
                f"cursor row, found {len(cursor_rows)}"
            )
        cursor = cursor_rows[0]
        rows_table = store.get(ROWS_TABLE)
        rows = (
            rows_table.rows(partition=STATE_PARTITION)
            if STATE_PARTITION in rows_table.partitions else []
        )
        buffer_table = store.get(BUFFER_TABLE)
        buffer_rows = (
            buffer_table.rows(partition=STATE_PARTITION)
            if STATE_PARTITION in buffer_table.partitions else []
        )
        buffer = [
            (
                row["seq"],
                LogEntry(
                    time=row["time"], fields=json.loads(row["fields"])
                ),
            )
            for row in buffer_rows
        ]
        return StreamSnapshot(
            fingerprint=cursor["fingerprint"],
            last_seq=cursor["last_seq"],
            watermark=cursor["watermark"],
            ticks=cursor["ticks"],
            consumed=cursor["consumed"],
            late_dropped=cursor["late_dropped"],
            ignored=cursor["ignored"],
            rows=rows,
            buffer=buffer,
        )

"""Online event extraction over tailed log-store records.

The batch :class:`~repro.cloudbot.extractor.EventExtractor` scans a
whole time window; the streaming loop instead receives one
:class:`~repro.storage.logstore.LogEntry` at a time from the tailer
and must turn it into events immediately.
:class:`StreamingExtractor` reuses the exact rule objects of the batch
extractor — :class:`~repro.cloudbot.extractor.LogRegexRule` on entries
carrying a ``line`` field, :class:`~repro.cloudbot.extractor.
MetricThresholdRule` on entries carrying ``metric``/``value`` — so a
record extracts to the same events whichever side consumes it.
Entries carrying an ``event`` field are pre-extracted events in
transit (the SLS → stream shortcut) and deserialize directly.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.cloudbot.extractor import (
    LogRegexRule,
    MetricThresholdRule,
    default_log_rules,
    default_metric_rules,
)
from repro.core.events import Event, Severity
from repro.storage.logstore import LogEntry
from repro.telemetry.logs import LogLine
from repro.telemetry.metrics import MetricSample

#: Value → member lookup (same reason as the pipeline's: EnumMeta call
#: overhead in the per-record loop).
_SEVERITY_BY_VALUE = {int(level): level for level in Severity}


def event_record(event: Event) -> dict[str, Any]:
    """Fields of a log-store entry carrying a pre-extracted event.

    The inverse of :meth:`StreamingExtractor.events_from_entry`'s
    direct-event branch: ``store.append(event.time,
    **event_record(event))`` ships an event through the log store so a
    tailer on the other side reconstructs it exactly.
    """
    fields: dict[str, Any] = {
        "event": event.name,
        "target": event.target,
        "level": int(event.level),
        "expire_interval": event.expire_interval,
    }
    duration = event.attributes.get("duration")
    if duration is not None:
        fields["duration"] = float(duration)
    return fields


class StreamingExtractor:
    """Per-record extraction reusing the batch expert rules.

    ``metric_rules`` / ``log_rules`` default to the shared example
    rule sets (:func:`~repro.cloudbot.extractor.default_metric_rules`
    and :func:`~repro.cloudbot.extractor.default_log_rules`).
    """

    def __init__(self, *,
                 metric_rules: Sequence[MetricThresholdRule] | None = None,
                 log_rules: Sequence[LogRegexRule] | None = None) -> None:
        self._metric_rules = tuple(
            default_metric_rules() if metric_rules is None else metric_rules
        )
        self._log_rules = tuple(
            default_log_rules() if log_rules is None else log_rules
        )

    def events_from_entry(self, entry: LogEntry) -> list[Event]:
        """Events extracted from one tailed record (possibly none).

        Recognizes three record shapes, in order: a raw log line
        (``line`` field → every matching log rule fires), a metric
        sample (``metric`` + ``value`` → every matching threshold rule
        fires), and a pre-extracted event (``event`` field →
        deserialized as-is).  Unrecognized records extract to nothing —
        a tailer shares its store with record kinds it does not speak.
        """
        fields = entry.fields
        line = fields.get("line")
        if line is not None:
            log_line = LogLine(
                time=entry.time, target=fields.get("target", ""), line=line
            )
            return [
                event
                for rule in self._log_rules
                if (event := rule.extract(log_line)) is not None
            ]
        metric = fields.get("metric")
        if metric is not None:
            sample = MetricSample(
                time=entry.time, target=fields.get("target", ""),
                metric=metric, value=float(fields.get("value", 0.0)),
            )
            return [
                event
                for rule in self._metric_rules
                if (event := rule.extract(sample)) is not None
            ]
        if fields.get("event") is not None:
            return [self._direct_event(entry)]
        return []

    def events_from_entries(
        self, entries: Iterable[LogEntry]
    ) -> list[Event]:
        """Extraction over a released batch, preserving record order."""
        events: list[Event] = []
        for entry in entries:
            events.extend(self.events_from_entry(entry))
        return events

    def _direct_event(self, entry: LogEntry) -> Event:
        """Deserialize a pre-extracted event record (see
        :func:`event_record`)."""
        fields = entry.fields
        duration = fields.get("duration")
        attributes = (
            {} if duration is None else {"duration": float(duration)}
        )
        return Event(
            name=fields["event"],
            time=entry.time,
            target=fields["target"],
            expire_interval=float(fields.get("expire_interval", 600.0)),
            level=_SEVERITY_BY_VALUE[
                int(fields.get("level", int(Severity.CRITICAL)))
            ],
            attributes=attributes,
        )

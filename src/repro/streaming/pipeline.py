"""The streaming CDI loop: tail → extract → apply → checkpoint → publish.

:class:`StreamingCdiPipeline` is the continuous counterpart of the
paper's daily Spark job — CloudBot's collect → extract → match loop
driving the CDI state online.  Each :meth:`tick`:

1. **tails** the log store past the persisted cursor
   (:class:`~repro.streaming.tailer.LogTailer` — watermark admission,
   bounded reordering);
2. **extracts** events from the released records
   (:class:`~repro.streaming.extract.StreamingExtractor`, the batch
   expert rules reused);
3. **applies** the resulting events-table rows to the incremental
   state (:class:`~repro.streaming.state.IncrementalCdiState`), and
   optionally **matches** the tick's events against a
   :class:`~repro.cloudbot.rules.RuleEngine`;
4. **checkpoints** the whole stream state atomically
   (:class:`~repro.streaming.persist.StreamCheckpoint`), *then*
5. **publishes** the refreshed rollup columns into the serving tables
   through ``overwrite_partition_columns`` — the generation-stamped
   publish primitive, so a concurrent reader sees the old rollup or
   the new one, never a torn mix.

The checkpoint-before-publish order makes every tick boundary a safe
kill point: a crash after the checkpoint but before the publish is
repaired by :meth:`resume` (replay + republish, both idempotent); a
crash before the checkpoint loses only unacknowledged cursor
progress, so the next poll re-reads those records — and since the
replayed state was rebuilt strictly from the checkpoint, nothing is
ever double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.cloudbot.rules import RuleEngine, RuleMatch
from repro.core.events import EventCatalog
from repro.core.indicator import CdiReport, ServicePeriod
from repro.core.fastpath import ResolverIndex, WeightTable
from repro.core.weights import WeightConfig
from repro.pipeline.checkpoint import job_fingerprint
from repro.pipeline.daily import (
    WEIGHTS_CONFIG_KEY,
    event_to_row,
    fleet_report_from_columns,
)
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    VM_CDI_TABLE,
    event_cdi_schema,
    vm_cdi_schema,
)
from repro.storage.configdb import ConfigDB
from repro.storage.logstore import LogEntry, LogStore
from repro.storage.table import TableStore
from repro.streaming.extract import StreamingExtractor
from repro.streaming.persist import StreamCheckpoint, StreamSnapshot
from repro.streaming.state import IncrementalCdiState
from repro.streaming.tailer import LogTailer


@dataclass(frozen=True, slots=True)
class TickResult:
    """What one tick (or flush) of the streaming loop did."""

    tick: int
    released: int
    applied: int
    ignored: int
    buffered: int
    late_dropped: int
    watermark: float | None
    fleet_report: CdiReport
    matches: tuple[RuleMatch, ...] = ()


class StreamingCdiPipeline:
    """Continuous CDI maintenance for one day partition.

    Parameters
    ----------
    log_store:
        The SLS-like hot store the tailer consumes.
    tables:
        Output table store; ``vm_cdi``/``event_cdi`` are created if
        absent and their ``partition`` is republished every tick.
    config_db:
        Holds the weight configuration under
        :data:`~repro.pipeline.daily.WEIGHTS_CONFIG_KEY`.
    catalog, services, partition:
        Same meaning as for the batch daily job.
    allowed_lateness, max_buffer:
        Tailer watermark slack and reordering-buffer bound.
    checkpoint:
        Optional :class:`StreamCheckpoint` for crash recovery; without
        one the stream is memory-only.
    extractor:
        Record → events extraction (defaults to the shared expert
        rules).
    rule_engine:
        Optional CloudBot rule engine evaluated against each tick's
        extracted events (the "match" step); matches are surfaced on
        the :class:`TickResult`, not acted on here.
    """

    def __init__(self, log_store: LogStore, tables: TableStore,
                 config_db: ConfigDB, catalog: EventCatalog,
                 services: Mapping[str, ServicePeriod], partition: str, *,
                 allowed_lateness: float = 600.0, max_buffer: int = 4096,
                 checkpoint: StreamCheckpoint | None = None,
                 extractor: StreamingExtractor | None = None,
                 rule_engine: RuleEngine | None = None) -> None:
        self._tables = tables
        self._partition = partition
        self._checkpoint = checkpoint
        self._extractor = (
            StreamingExtractor() if extractor is None else extractor
        )
        self._rule_engine = rule_engine
        for name, schema in (
            (VM_CDI_TABLE, vm_cdi_schema()),
            (EVENT_CDI_TABLE, event_cdi_schema()),
        ):
            tables.create(name, schema, if_not_exists=True)
        record = config_db.get(WEIGHTS_CONFIG_KEY)
        weights = WeightConfig.from_dict(record.value)
        weight_table = WeightTable.from_config(catalog, weights)
        index = ResolverIndex.build(catalog, weight_table)
        self._fingerprint = job_fingerprint(
            partition, services, record.version, 0,
            f"streaming+lateness={allowed_lateness!r}",
        )
        self._tailer = LogTailer(
            log_store, allowed_lateness=allowed_lateness,
            max_buffer=max_buffer,
        )
        self._services = dict(services)
        self._catalog = catalog
        self._weight_table = weight_table
        self._index = index
        self._state = IncrementalCdiState(
            services, catalog, weight_table, index
        )
        self._rows_log: list[dict[str, Any]] = []
        self._ticks = 0
        self._ignored = 0

    # -- introspection ------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Digest tying checkpoints to this stream's exact inputs."""
        return self._fingerprint

    @property
    def ticks(self) -> int:
        """Ticks completed (flushes included)."""
        return self._ticks

    @property
    def tailer(self) -> LogTailer:
        """The underlying tailer (cursor/watermark introspection)."""
        return self._tailer

    @property
    def state(self) -> IncrementalCdiState:
        """The incremental CDI state being maintained."""
        return self._state

    @property
    def applied_rows(self) -> list[dict[str, Any]]:
        """Every applied events-table row, in applied order (a copy)."""
        return list(self._rows_log)

    # -- the loop -----------------------------------------------------------

    def resume(self) -> bool:
        """Restore from the checkpoint, if one exists; republish.

        Rebuilds the tailer (cursor, watermark, buffer, counters) and
        the CDI state (row-log replay) strictly from the checkpoint,
        then republishes the rollups — so a crash anywhere between two
        checkpoint writes resolves to the last checkpointed tick, and
        records past the checkpointed cursor are simply re-read on the
        next poll.  Raises ``ValueError`` when the checkpoint belongs
        to a different stream (fingerprint mismatch).
        """
        if self._checkpoint is None:
            return False
        snapshot = self._checkpoint.load()
        if snapshot is None:
            return False
        if snapshot.fingerprint != self._fingerprint:
            raise ValueError(
                "stream checkpoint fingerprint mismatch: checkpoint "
                f"{snapshot.fingerprint[:12]}… does not belong to this "
                f"stream ({self._fingerprint[:12]}…)"
            )
        self._tailer.restore(
            cursor=snapshot.last_seq, watermark=snapshot.watermark,
            buffer=snapshot.buffer, consumed=snapshot.consumed,
            late_dropped=snapshot.late_dropped,
        )
        self._state = IncrementalCdiState(
            self._services, self._catalog, self._weight_table, self._index
        )
        self._rows_log = []
        for row in snapshot.rows:
            self._state.apply(row)
            self._rows_log.append(row)
        self._ticks = snapshot.ticks
        self._ignored = snapshot.ignored
        self._publish()
        return True

    def tick(self) -> TickResult:
        """One poll-extract-apply-checkpoint-publish round."""
        return self._process(self._tailer.poll())

    def flush(self) -> TickResult:
        """Close out the stream: release the whole reordering buffer."""
        return self._process(self._tailer.flush())

    def _process(self, entries: Sequence[LogEntry]) -> TickResult:
        """The shared tail end of :meth:`tick` and :meth:`flush`."""
        events = self._extractor.events_from_entries(entries)
        applied = ignored = 0
        for event in events:
            row = event_to_row(event)
            if self._state.apply(row):
                self._rows_log.append(row)
                applied += 1
            else:
                ignored += 1
        self._ignored += ignored
        matches: tuple[RuleMatch, ...] = ()
        if self._rule_engine is not None and events:
            now = max(event.time for event in events)
            matches = tuple(self._rule_engine.evaluate(events, now))
        self._ticks += 1
        self._persist()
        report = self._publish()
        return TickResult(
            tick=self._ticks,
            released=len(entries),
            applied=applied,
            ignored=ignored,
            buffered=self._tailer.buffered,
            late_dropped=self._tailer.late_dropped,
            watermark=self._tailer.watermark,
            fleet_report=report,
            matches=matches,
        )

    def _persist(self) -> None:
        """Checkpoint the full stream state (before publishing)."""
        if self._checkpoint is None:
            return
        self._checkpoint.save(StreamSnapshot(
            fingerprint=self._fingerprint,
            last_seq=self._tailer.cursor,
            watermark=self._tailer.watermark,
            ticks=self._ticks,
            consumed=self._tailer.consumed,
            late_dropped=self._tailer.late_dropped,
            ignored=self._ignored,
            rows=self._rows_log,
            buffer=self._tailer.buffer_snapshot(),
        ))

    def _publish(self) -> CdiReport:
        """Swap the refreshed rollup columns into the serving tables.

        ``overwrite_partition_columns`` validates, replaces the
        partition, and *then* bumps the table generation — the
        atomic-visibility publish the serving layer's
        ``GenerationCache`` snapshots against.
        """
        vm_columns, event_columns = self._state.snapshot_columns()
        self._tables.get(VM_CDI_TABLE).overwrite_partition_columns(
            vm_columns, self._partition
        )
        self._tables.get(EVENT_CDI_TABLE).overwrite_partition_columns(
            event_columns, self._partition
        )
        return fleet_report_from_columns(vm_columns)

"""Cursor-tailing log consumer with a watermark reordering buffer.

:class:`LogTailer` turns the :class:`~repro.storage.logstore.LogStore`
cursor protocol (:meth:`~repro.storage.logstore.LogStore.
appended_after`) into an ordered, bounded-lateness stream:

* every poll reads records past the persisted cursor in **arrival**
  order (exactly once, however far out of timestamp order they
  arrived);
* admitted records wait in a min-heap keyed ``(time, seq)`` until the
  **watermark** — the largest event time seen minus the allowed
  lateness — passes them, so the release order interleaves late
  arrivals back into timestamp order;
* records that arrive with ``time < watermark`` (later than the
  allowed lateness) are **dropped and counted**, never silently
  applied out of order;
* the buffer is **bounded**: when it outgrows ``max_buffer`` the
  watermark is forced forward to drain the oldest records, trading
  reordering slack for memory.

Release order is globally deterministic: across all polls, released
records come out sorted by ``(time, seq)`` — the watermark is
monotonic, a record is only admitted while ``time >= watermark``, and
ties release in arrival order.  The differential harness leans on
exactly this: a batch job fed the admitted records sorted by
``(time, seq)`` sees the same sequence the stream applied.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.storage.logstore import LogEntry, LogStore


class LogTailer:
    """Incremental consumer of one log store past a persisted cursor.

    Parameters
    ----------
    store:
        The log store to tail.
    allowed_lateness:
        How far (in event time) a record may lag the newest seen
        record and still be admitted.  ``0`` admits only monotone
        streams.
    max_buffer:
        Reordering-buffer bound; overflow force-advances the
        watermark.
    cursor:
        Starting sequence cursor (``-1`` = from the beginning).
    """

    def __init__(self, store: LogStore, *, allowed_lateness: float = 600.0,
                 max_buffer: int = 4096, cursor: int = -1) -> None:
        if allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be >= 0, got {allowed_lateness}"
            )
        if max_buffer < 1:
            raise ValueError(f"max_buffer must be >= 1, got {max_buffer}")
        self._store = store
        self._lateness = allowed_lateness
        self._max_buffer = max_buffer
        self._cursor = cursor
        self._watermark = float("-inf")
        self._buffer: list[tuple[float, int, LogEntry]] = []
        self._consumed = 0
        self._late_dropped = 0

    @property
    def cursor(self) -> int:
        """Last consumed sequence number (the resume point)."""
        return self._cursor

    @property
    def watermark(self) -> float | None:
        """Current watermark, or ``None`` before any record is seen."""
        return None if self._watermark == float("-inf") else self._watermark

    @property
    def allowed_lateness(self) -> float:
        """The configured lateness bound."""
        return self._lateness

    @property
    def buffered(self) -> int:
        """Records currently held back in the reordering buffer."""
        return len(self._buffer)

    @property
    def consumed(self) -> int:
        """Total records read past the cursor (dropped ones included)."""
        return self._consumed

    @property
    def late_dropped(self) -> int:
        """Records dropped for arriving beyond the allowed lateness."""
        return self._late_dropped

    def poll(self) -> list[LogEntry]:
        """Consume everything new and return the releasable records.

        Admission is judged against the watermark as of the *previous*
        poll — records within one batch never drop each other — then
        the watermark advances to ``max(batch time) - lateness`` and
        every buffered record at or before it is released in
        ``(time, seq)`` order.
        """
        batch = self._store.appended_after(self._cursor)
        max_time: float | None = None
        for seq, entry in batch:
            self._cursor = seq
            self._consumed += 1
            if entry.time < self._watermark:
                self._late_dropped += 1
                continue
            heapq.heappush(self._buffer, (entry.time, seq, entry))
            if max_time is None or entry.time > max_time:
                max_time = entry.time
        if max_time is not None:
            self._watermark = max(
                self._watermark, max_time - self._lateness
            )
        return self._release()

    def _release(self) -> list[LogEntry]:
        """Pop releasable (or overflowing) records, advancing the mark."""
        out: list[LogEntry] = []
        buffer = self._buffer
        while buffer and (
            buffer[0][0] <= self._watermark
            or len(buffer) > self._max_buffer
        ):
            time, _seq, entry = heapq.heappop(buffer)
            if time > self._watermark:
                # Overflow drain: the watermark jumps to the drained
                # record so later arrivals older than it are dropped,
                # keeping the release order monotone.
                self._watermark = time
            out.append(entry)
        return out

    def flush(self) -> list[LogEntry]:
        """Release everything still buffered (end-of-day close-out)."""
        out: list[LogEntry] = []
        while self._buffer:
            time, _seq, entry = heapq.heappop(self._buffer)
            if time > self._watermark:
                self._watermark = time
            out.append(entry)
        return out

    # -- persistence hooks --------------------------------------------------

    def buffer_snapshot(self) -> list[tuple[int, LogEntry]]:
        """Buffered ``(seq, entry)`` pairs in release order."""
        return [
            (seq, entry)
            for _, seq, entry in sorted(self._buffer)
        ]

    def restore(self, *, cursor: int, watermark: float | None,
                buffer: Iterable[tuple[int, LogEntry]],
                consumed: int = 0, late_dropped: int = 0) -> None:
        """Reinstate a persisted tailer state (crash recovery).

        The checkpointed cursor, watermark, counters, and reordering
        buffer replace the current ones wholesale; the next
        :meth:`poll` then re-reads exactly the records that were never
        durably consumed.
        """
        self._cursor = cursor
        self._watermark = (
            float("-inf") if watermark is None else watermark
        )
        self._buffer = [
            (entry.time, seq, entry) for seq, entry in buffer
        ]
        heapq.heapify(self._buffer)
        self._consumed = consumed
        self._late_dropped = late_dropped

"""Streaming incremental CDI: the continuous CloudBot loop.

The batch repro computes each day's CDI tables from scratch; this
package maintains them *online*.  A :class:`LogTailer` consumes new
log-store records past a persisted cursor with watermark-bounded
reordering, a :class:`StreamingExtractor` turns them into events with
the batch expert rules, an :class:`IncrementalCdiState` keeps every
VM's damage integrals current through the exact batch kernels, and
:class:`StreamingCdiPipeline` ties the loop together with atomic
checkpoints (:class:`StreamCheckpoint`) and generation-stamped rollup
publication.  The correctness contract — incremental state
byte-identical to a from-scratch batch recompute after any admitted
stream, including crash/resume at any tick boundary — is enforced by
the differential harness in ``tests/streaming``.
"""

from repro.streaming.extract import StreamingExtractor, event_record
from repro.streaming.persist import (
    BUFFER_TABLE,
    CURSOR_TABLE,
    ROWS_TABLE,
    STATE_PARTITION,
    StreamCheckpoint,
    StreamSnapshot,
    buffer_schema,
    cursor_schema,
)
from repro.streaming.pipeline import StreamingCdiPipeline, TickResult
from repro.streaming.state import IncrementalCdiState
from repro.streaming.tailer import LogTailer

__all__ = [
    "BUFFER_TABLE",
    "CURSOR_TABLE",
    "ROWS_TABLE",
    "STATE_PARTITION",
    "IncrementalCdiState",
    "LogTailer",
    "StreamCheckpoint",
    "StreamSnapshot",
    "StreamingCdiPipeline",
    "StreamingExtractor",
    "TickResult",
    "buffer_schema",
    "cursor_schema",
    "event_record",
]

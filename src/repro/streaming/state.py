"""Incrementally maintained per-VM damage integrals and rollup rows.

:class:`IncrementalCdiState` is the streaming counterpart of one
:meth:`~repro.pipeline.daily.DailyCdiJob.run` compute pass: it accepts
events-table rows one at a time (in the tailer's release order) and
keeps, per VM, exactly the flat weight-resolved intervals the batch
fast path would have produced for the same rows — stateless rows
through the shared :func:`~repro.pipeline.daily.resolve_stateless_row`,
stateful ``*_add``/``*_del`` rows re-paired wholesale through the
shared :func:`~repro.pipeline.daily.resolve_stateful_rows` whenever a
new one arrives (pairing is order-sensitive, so the carried raw rows
are resolved as one group, never incrementally).

Dirty VMs are re-swept through the exact batch kernel
(:func:`~repro.core.fastpath.fleet_cdi_tables_flat`), one VM at a
time.  Sharding the kernel sweep never changes any value (the
per-group damage integrals are exact per group — the property
``run_checkpointed`` already relies on), so a snapshot assembled from
per-VM kernel calls is byte-identical to a from-scratch batch
recompute over the same rows.  That identity — not approximate
agreement — is what ``tests/streaming`` asserts.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.events import Event, EventCatalog
from repro.core.fastpath import (
    FlatInterval,
    ResolverIndex,
    WeightTable,
    fleet_cdi_tables_flat,
)
from repro.core.indicator import CdiReport, ServicePeriod
from repro.pipeline.daily import (
    _event_row_key,
    _rows_to_columns,
    event_to_row,
    fleet_report_from_columns,
    resolve_stateful_rows,
    resolve_stateless_row,
)
from repro.pipeline.tables import event_cdi_schema, vm_cdi_schema


class IncrementalCdiState:
    """Per-VM CDI state maintained online across tick boundaries.

    Parameters
    ----------
    services:
        VM → service period, fixed for the stream's day.  Rows whose
        target is not in service are rejected by :meth:`apply` (the
        batch job's service filter).
    catalog:
        Event catalog (stateful pairing definitions).
    weight_table, index:
        The resolved weight configuration — the same objects the batch
        job builds once per config version.
    """

    def __init__(self, services: Mapping[str, ServicePeriod],
                 catalog: EventCatalog, weight_table: WeightTable,
                 index: ResolverIndex) -> None:
        self._services = dict(services)
        self._vm_list = sorted(self._services)
        self._horizon = max(
            (s.end for s in self._services.values()), default=0.0
        )
        self._catalog = catalog
        self._weight_table = weight_table
        self._index = index
        self._flat: dict[str, list[FlatInterval]] = {}
        self._stateful_rows: dict[str, list[dict[str, Any]]] = {}
        # Caches hold each VM's latest kernel output; eventless VMs
        # start at the kernel's exact zero row (0.0 integrals over the
        # service-time denominator).
        self._vm_row_cache: dict[str, dict[str, Any]] = {
            vm: {
                "vm": vm, "unavailability": 0.0, "performance": 0.0,
                "control_plane": 0.0,
                "service_time": service.end - service.start,
            }
            for vm, service in self._services.items()
        }
        self._event_rows_cache: dict[str, list[dict[str, Any]]] = {
            vm: [] for vm in self._services
        }
        self._dirty: set[str] = set()
        self._applied = 0

    @property
    def applied(self) -> int:
        """Rows accepted so far (the batch job's ``event_count``)."""
        return self._applied

    @property
    def horizon(self) -> float:
        """Open stateful periods clip here (max service end)."""
        return self._horizon

    def apply(self, row: Mapping[str, Any]) -> bool:
        """Ingest one events-table row; ``False`` if out of service.

        Applies the exact batch resolution semantics: stateless rows
        resolve immediately (unknown ``(name, level)`` weights skip; a
        negative explicit duration raises ``ValueError``, as the batch
        resolve stage would), stateful rows join the VM's carried raw
        group for wholesale re-pairing, and unknown names count toward
        ``applied`` without producing intervals — all three mirroring
        the batch paths row for row.
        """
        vm = row["target"]
        if vm not in self._services:
            return False
        self._applied += 1
        name = row["name"]
        info = self._index.stateless.get(name)
        if info is not None:
            interval = resolve_stateless_row(row, info)
            if interval is not None:
                self._flat.setdefault(vm, []).append(interval)
                self._dirty.add(vm)
        elif name in self._index.stateful_names:
            self._stateful_rows.setdefault(vm, []).append(dict(row))
            self._dirty.add(vm)
        return True

    def apply_event(self, event: Event) -> bool:
        """Ingest one extracted :class:`Event` (row conversion inline)."""
        return self.apply(event_to_row(event))

    def apply_rows(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Ingest many rows in order; returns how many were accepted."""
        accepted = 0
        for row in rows:
            if self.apply(row):
                accepted += 1
        return accepted

    def refresh(self) -> set[str]:
        """Re-sweep every dirty VM through the kernel; returns them."""
        recomputed = set(self._dirty)
        for vm in recomputed:
            self._recompute(vm)
        self._dirty.clear()
        return recomputed

    def _recompute(self, vm: str) -> None:
        """One-VM kernel sweep over the VM's current flat intervals."""
        flat = list(self._flat.get(vm, ()))
        stateful = self._stateful_rows.get(vm)
        if stateful:
            flat.extend(resolve_stateful_rows(
                stateful, self._catalog, self._weight_table, self._horizon
            ))
        tables = fleet_cdi_tables_flat(
            [(vm, flat)], {vm: self._services[vm]}
        )
        self._vm_row_cache[vm] = tables.vm_rows[0]
        self._event_rows_cache[vm] = sorted(
            tables.event_rows, key=_event_row_key
        )

    def snapshot_rows(
        self,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """``(vm_cdi, event_cdi)`` rows in the canonical batch order.

        VM rows sorted by VM; event rows sorted by (VM, event) — each
        VM's cached rows are already event-sorted, so concatenating
        them in VM order *is* the global sort.
        """
        self.refresh()
        vm_rows = [self._vm_row_cache[vm] for vm in self._vm_list]
        event_rows: list[dict[str, Any]] = []
        for vm in self._vm_list:
            event_rows.extend(self._event_rows_cache[vm])
        return vm_rows, event_rows

    def snapshot_columns(self) -> tuple[dict[str, list], dict[str, list]]:
        """Snapshot as output-table column lists (the publish shape)."""
        vm_rows, event_rows = self.snapshot_rows()
        return (
            _rows_to_columns(vm_rows, vm_cdi_schema().names),
            _rows_to_columns(event_rows, event_cdi_schema().names),
        )

    def fleet_report(self) -> CdiReport:
        """Formula 4 aggregation over the current per-VM rows."""
        vm_rows, _ = self.snapshot_rows()
        return fleet_report_from_columns(
            _rows_to_columns(vm_rows, vm_cdi_schema().names)
        )

"""Fault injection: the ground truth behind synthetic telemetry.

Experiments need *known answers*: a fault model decides what actually
went wrong in the simulated fleet, the renderers in
:mod:`repro.telemetry.metrics` / :mod:`repro.telemetry.logs` /
:mod:`repro.telemetry.tickets` turn faults into raw telemetry, and the
CloudBot extractor must recover them as events.  Each fault kind maps
onto the paper's event vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.events import EventCategory


class FaultKind(enum.Enum):
    """Injectable fault kinds and the stability category they damage."""

    VM_DOWN = "vm_down"
    VM_HANG = "vm_hang"
    NC_DOWN = "nc_down"
    DDOS_BLACKHOLE = "ddos_blackhole"
    SLOW_IO = "slow_io"
    PACKET_LOSS = "packet_loss"
    VCPU_CONTENTION = "vcpu_contention"
    NIC_FLAPPING = "nic_flapping"
    GPU_DROP = "gpu_drop"
    CPU_FREQ_CAPPED = "cpu_freq_capped"
    ALLOCATION_BUG = "allocation_bug"
    POWER_SENSOR_ZERO = "power_sensor_zero"
    CONTROL_API_OUTAGE = "control_api_outage"
    CONSOLE_OUTAGE = "console_outage"


#: Which stability category each fault kind damages (Definition 1).
FAULT_CATEGORY: Mapping[FaultKind, EventCategory] = {
    FaultKind.VM_DOWN: EventCategory.UNAVAILABILITY,
    FaultKind.VM_HANG: EventCategory.UNAVAILABILITY,
    FaultKind.NC_DOWN: EventCategory.UNAVAILABILITY,
    FaultKind.DDOS_BLACKHOLE: EventCategory.UNAVAILABILITY,
    FaultKind.SLOW_IO: EventCategory.PERFORMANCE,
    FaultKind.PACKET_LOSS: EventCategory.PERFORMANCE,
    FaultKind.VCPU_CONTENTION: EventCategory.PERFORMANCE,
    FaultKind.NIC_FLAPPING: EventCategory.PERFORMANCE,
    FaultKind.GPU_DROP: EventCategory.PERFORMANCE,
    FaultKind.CPU_FREQ_CAPPED: EventCategory.PERFORMANCE,
    FaultKind.ALLOCATION_BUG: EventCategory.PERFORMANCE,
    FaultKind.POWER_SENSOR_ZERO: EventCategory.PERFORMANCE,
    FaultKind.CONTROL_API_OUTAGE: EventCategory.CONTROL_PLANE,
    FaultKind.CONSOLE_OUTAGE: EventCategory.CONTROL_PLANE,
}


@dataclass(frozen=True, slots=True)
class Fault:
    """One injected fault on one target over ``[start, start+duration]``."""

    kind: FaultKind
    target: str
    start: float
    duration: float
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")

    @property
    def end(self) -> float:
        """Fault end time."""
        return self.start + self.duration

    @property
    def category(self) -> EventCategory:
        """Stability category the fault damages."""
        return FAULT_CATEGORY[self.kind]


@dataclass(frozen=True, slots=True)
class FaultRate:
    """Poisson fault process parameters for one kind.

    ``per_target_per_day`` is the expected fault count per target per
    day; durations are log-normal around ``mean_duration`` seconds.
    """

    kind: FaultKind
    per_target_per_day: float
    mean_duration: float
    duration_sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.per_target_per_day < 0:
            raise ValueError("per_target_per_day must be >= 0")
        if self.mean_duration <= 0:
            raise ValueError("mean_duration must be > 0")


class FaultInjector:
    """Samples faults from Poisson processes over a time window."""

    def __init__(self, rates: Sequence[FaultRate], seed: int = 0) -> None:
        self._rates = tuple(rates)
        self._rng = np.random.default_rng(seed)

    def sample(self, targets: Iterable[str], start: float,
               end: float) -> list[Fault]:
        """Draw faults for all targets over ``[start, end)``.

        Deterministic for a fixed seed, target order, and window.
        """
        if end <= start:
            raise ValueError(f"window reversed: [{start}, {end})")
        days = (end - start) / 86400.0
        faults: list[Fault] = []
        for target in targets:
            for rate in self._rates:
                count = int(self._rng.poisson(rate.per_target_per_day * days))
                for _ in range(count):
                    at = float(self._rng.uniform(start, end))
                    duration = float(
                        self._rng.lognormal(
                            np.log(rate.mean_duration), rate.duration_sigma
                        )
                    )
                    duration = min(duration, end - at)
                    faults.append(
                        Fault(kind=rate.kind, target=target, start=at,
                              duration=duration)
                    )
        faults.sort(key=lambda f: (f.start, f.target, f.kind.value))
        return faults


def baseline_rates(scale: float = 1.0) -> list[FaultRate]:
    """A plausible background fault mix for a healthy fleet.

    ``scale`` multiplies all rates, which is how the FY2024 trend
    scenario models year-over-year stability improvement.
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    base = [
        FaultRate(FaultKind.VM_DOWN, 0.002, 300.0),
        FaultRate(FaultKind.VM_HANG, 0.001, 240.0),
        FaultRate(FaultKind.SLOW_IO, 0.02, 120.0),
        FaultRate(FaultKind.PACKET_LOSS, 0.03, 90.0),
        FaultRate(FaultKind.VCPU_CONTENTION, 0.015, 300.0),
        FaultRate(FaultKind.NIC_FLAPPING, 0.004, 60.0),
        FaultRate(FaultKind.CONTROL_API_OUTAGE, 0.003, 120.0),
        FaultRate(FaultKind.CONSOLE_OUTAGE, 0.001, 180.0),
    ]
    return [
        FaultRate(r.kind, r.per_target_per_day * scale, r.mean_duration,
                  r.duration_sigma)
        for r in base
    ]

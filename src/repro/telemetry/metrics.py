"""Synthetic metric time series with fault overlays.

The Data Collector (paper Section II-B) gathers fine-grained metrics
such as ``read_latency`` and per-core power.  This module generates
realistic series — daily seasonality plus noise — and overlays the
effects of injected faults so the extractor's threshold and
statistical detectors have true signals to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.telemetry.faults import Fault, FaultKind

#: Metric name conventions used by the extractor's expert rules.
READ_LATENCY = "read_latency"          # ms, cloud-disk read latency
PACKET_LOSS_RATE = "packet_loss_rate"  # fraction in [0, 1]
CPU_STEAL = "cpu_steal"                # fraction of stolen vCPU time
CPU_POWER = "cpu_power"                # watts per socket
CPU_FREQ = "cpu_freq"                  # GHz
HEARTBEAT = "heartbeat"                # 1 alive / 0 silent


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One collected sample."""

    time: float
    target: str
    metric: str
    value: float


@dataclass(frozen=True, slots=True)
class SeriesSpec:
    """Shape of a healthy metric series.

    ``base`` is the mean level, ``daily_amplitude`` the seasonal swing
    (peaks in the evening, matching the business-peak narrative of
    Case 2), ``noise_sigma`` the Gaussian jitter.
    """

    metric: str
    base: float
    daily_amplitude: float
    noise_sigma: float
    floor: float = 0.0


DEFAULT_SPECS: dict[str, SeriesSpec] = {
    READ_LATENCY: SeriesSpec(READ_LATENCY, base=2.0, daily_amplitude=0.5,
                             noise_sigma=0.2),
    PACKET_LOSS_RATE: SeriesSpec(PACKET_LOSS_RATE, base=1e-4,
                                 daily_amplitude=5e-5, noise_sigma=5e-5),
    CPU_STEAL: SeriesSpec(CPU_STEAL, base=0.01, daily_amplitude=0.005,
                          noise_sigma=0.005),
    CPU_POWER: SeriesSpec(CPU_POWER, base=180.0, daily_amplitude=40.0,
                          noise_sigma=5.0),
    CPU_FREQ: SeriesSpec(CPU_FREQ, base=2.7, daily_amplitude=0.05,
                         noise_sigma=0.02),
    HEARTBEAT: SeriesSpec(HEARTBEAT, base=1.0, daily_amplitude=0.0,
                          noise_sigma=0.0),
}

SECONDS_PER_DAY = 86400.0


def healthy_series(spec: SeriesSpec, times: np.ndarray,
                   rng: np.random.Generator) -> np.ndarray:
    """Seasonal + noise series sampled at ``times`` (seconds)."""
    phase = 2.0 * np.pi * (times % SECONDS_PER_DAY) / SECONDS_PER_DAY
    # Evening peak: shift the sine so the max lands around 20:00.
    seasonal = spec.daily_amplitude * np.sin(phase - 2.0 * np.pi * 14 / 24)
    noise = rng.normal(0.0, spec.noise_sigma, size=times.shape)
    return np.maximum(spec.floor, spec.base + seasonal + noise)


def _fault_mask(fault: Fault, times: np.ndarray) -> np.ndarray:
    return (times >= fault.start) & (times < max(fault.end, fault.start + 1e-9))


def apply_fault(values: np.ndarray, times: np.ndarray, fault: Fault,
                metric: str) -> np.ndarray:
    """Overlay one fault's effect on a healthy series (pure)."""
    out = values.copy()
    mask = _fault_mask(fault, times)
    if not mask.any():
        return out
    if metric == READ_LATENCY and fault.kind in (
        FaultKind.SLOW_IO, FaultKind.NIC_FLAPPING
    ):
        out[mask] = out[mask] * fault.params.get("latency_factor", 20.0)
    elif metric == PACKET_LOSS_RATE and fault.kind in (
        FaultKind.PACKET_LOSS, FaultKind.NIC_FLAPPING
    ):
        out[mask] = np.maximum(out[mask], fault.params.get("loss_rate", 0.05))
    elif metric == CPU_STEAL and fault.kind in (
        FaultKind.VCPU_CONTENTION, FaultKind.ALLOCATION_BUG
    ):
        out[mask] = np.maximum(out[mask], fault.params.get("steal", 0.30))
    elif metric == CPU_POWER and fault.kind is FaultKind.POWER_SENSOR_ZERO:
        out[mask] = 0.0
    elif metric == CPU_FREQ and fault.kind is FaultKind.CPU_FREQ_CAPPED:
        out[mask] = out[mask] * fault.params.get("freq_factor", 0.6)
    elif metric == HEARTBEAT and fault.kind in (
        FaultKind.VM_DOWN, FaultKind.VM_HANG, FaultKind.NC_DOWN
    ):
        out[mask] = 0.0
    return out


class MetricGenerator:
    """Renders per-target metric streams with fault overlays."""

    def __init__(self, seed: int = 0,
                 specs: dict[str, SeriesSpec] | None = None) -> None:
        self._seed = seed
        self._specs = dict(specs or DEFAULT_SPECS)

    def sample_times(self, start: float, end: float,
                     interval: float = 60.0) -> np.ndarray:
        """Regular sampling grid over ``[start, end)``."""
        if end <= start:
            raise ValueError(f"window reversed: [{start}, {end})")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        return np.arange(start, end, interval)

    def series_for(self, target: str, metric: str, times: np.ndarray,
                   faults: Sequence[Fault] = ()) -> np.ndarray:
        """Full series of one metric on one target, faults applied."""
        spec = self._specs[metric]
        # Per-(target, metric) substream so regeneration is stable and
        # targets are independent.
        rng = np.random.default_rng(
            abs(hash((self._seed, target, metric))) % (2**32)
        )
        values = healthy_series(spec, times, rng)
        for fault in faults:
            if fault.target == target:
                values = apply_fault(values, times, fault, metric)
        return values

    def emit(self, targets: Iterable[str], metrics: Iterable[str],
             start: float, end: float, interval: float = 60.0,
             faults: Sequence[Fault] = ()) -> list[MetricSample]:
        """Materialize samples for the cross product of targets x metrics."""
        times = self.sample_times(start, end, interval)
        metric_list = list(metrics)
        samples: list[MetricSample] = []
        for target in targets:
            for metric in metric_list:
                values = self.series_for(target, metric, times, faults)
                samples.extend(
                    MetricSample(time=float(t), target=target, metric=metric,
                                 value=float(v))
                    for t, v in zip(times, values)
                )
        return samples

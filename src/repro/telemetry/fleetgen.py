"""Shard-parallel, generator-based fleet fault production.

A 100k-VM day cannot be sampled the way the scenario runners do it —
one :class:`~repro.telemetry.faults.FaultInjector` pass over the whole
fleet materializes every fault (and every derived event) at once.
This module produces the same kind of ground truth **per VM shard**:
the fleet is split into the exact contiguous shards the checkpointed
daily job uses, each shard gets its own independently-seeded injector,
and a generator yields one shard's faults at a time so the consumer
can ingest, compute, and release a shard before the next one exists.

Two properties make this usable for out-of-core pipelines:

* **Shard determinism** — a shard's faults depend only on
  ``(seed, shard index, shard targets, rates, window)``.  Generating
  shard ``k`` alone yields byte-identical faults to shard ``k`` of a
  full-fleet pass, which is what lets a resumed (or distributed) run
  regenerate just the shards it needs.
* **Split compatibility** — :func:`split_fleet` reproduces the daily
  job's contiguous balanced shard split and unit labels
  (``shard-0000``, ...) without importing the pipeline layer, so
  events ingested per shard line up one-to-one with the VM shards that
  ``run_checkpointed(..., sharded_events=True)`` will compute.  The
  duplication is deliberate (telemetry must stay importable without
  the pipeline); a test pins the two implementations to each other.

Faults, not events, are yielded: turning a fault into a catalog event
(name, severity, duration attribute) is scenario policy, so callers
pass each shard's faults through e.g.
:func:`repro.scenarios.common.fault_to_period`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.telemetry.faults import Fault, FaultInjector, FaultRate


@dataclass(frozen=True, slots=True)
class FleetShard:
    """One contiguous VM shard of the fleet.

    ``unit`` matches the daily job's checkpoint shard labels, so a
    shard's events can be routed straight into the matching per-shard
    events partition.
    """

    index: int
    unit: str
    targets: tuple[str, ...]


def shard_unit(index: int) -> str:
    """Label of shard ``index`` (pipeline-compatible: ``shard-0000``)."""
    return f"shard-{index:04d}"


def split_fleet(targets: Sequence[str], shards: int) -> list[FleetShard]:
    """Split ``targets`` into contiguous balanced shards.

    Mirrors the checkpointed daily job's split exactly: ``len(targets)
    // shards`` targets per shard with the first ``len(targets) %
    shards`` shards one larger, never more shards than targets, and at
    least one (possibly empty-fleet) shard.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts = min(shards, len(targets)) or 1
    base, extra = divmod(len(targets), parts)
    out: list[FleetShard] = []
    cursor = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        out.append(FleetShard(
            index=index, unit=shard_unit(index),
            targets=tuple(targets[cursor:cursor + size]),
        ))
        cursor += size
    return out


def _shard_seed(seed: int, index: int) -> int:
    """Decorrelated per-shard seed (splitmix64 finalizer).

    Adjacent ``(seed, index)`` pairs must not produce adjacent RNG
    states, and the mix must be a pure function of its inputs so shard
    regeneration stays deterministic across runs and processes.
    """
    mask = (1 << 64) - 1
    z = (seed * 0x9E3779B97F4A7C15 + index + 0x9E3779B97F4A7C15) & mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    return (z ^ (z >> 31)) & mask


def shard_faults(shard: FleetShard, rates: Sequence[FaultRate],
                 start: float, end: float, *, seed: int = 0) -> list[Fault]:
    """Sample one shard's faults with its own decorrelated injector.

    A fresh :class:`FaultInjector` seeded from ``(seed, shard.index)``
    samples only this shard's targets, so the result is independent of
    every other shard — the whole point: any shard can be (re)generated
    in isolation, in any order, on any worker.
    """
    injector = FaultInjector(rates, seed=_shard_seed(seed, shard.index))
    return injector.sample(shard.targets, start, end)


def iter_fleet_faults(targets: Sequence[str], shards: int,
                      rates: Sequence[FaultRate], start: float, end: float,
                      *, seed: int = 0
                      ) -> Iterator[tuple[FleetShard, list[Fault]]]:
    """Generate ``(shard, faults)`` pairs one shard at a time.

    The generator holds one shard's faults at a time — consuming it
    with ingest-then-release keeps peak memory proportional to the
    largest shard, not the fleet.
    """
    for shard in split_fleet(targets, shards):
        yield shard, shard_faults(shard, rates, start, end, seed=seed)

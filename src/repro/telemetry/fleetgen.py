"""Shard-parallel, generator-based fleet fault production.

A 100k-VM day cannot be sampled the way the scenario runners do it —
one :class:`~repro.telemetry.faults.FaultInjector` pass over the whole
fleet materializes every fault (and every derived event) at once.
This module produces the same kind of ground truth **per VM shard**:
the fleet is split into the exact contiguous shards the checkpointed
daily job uses, each shard gets its own independently-seeded injector,
and a generator yields one shard's faults at a time so the consumer
can ingest, compute, and release a shard before the next one exists.

Two properties make this usable for out-of-core pipelines:

* **Shard determinism** — a shard's faults depend only on
  ``(seed, shard index, shard targets, rates, window)``.  Generating
  shard ``k`` alone yields byte-identical faults to shard ``k`` of a
  full-fleet pass, which is what lets a resumed (or distributed) run
  regenerate just the shards it needs.
* **Split compatibility** — :func:`split_fleet` reproduces the daily
  job's contiguous balanced shard split and unit labels
  (``shard-0000``, ...) without importing the pipeline layer, so
  events ingested per shard line up one-to-one with the VM shards that
  ``run_checkpointed(..., sharded_events=True)`` will compute.  The
  duplication is deliberate (telemetry must stay importable without
  the pipeline); a test pins the two implementations to each other.

Faults, not events, are yielded: turning a fault into a catalog event
(name, severity, duration attribute) is scenario policy, so callers
pass each shard's faults through e.g.
:func:`repro.scenarios.common.fault_to_period`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterator, Sequence

from repro.core.events import EventCategory
from repro.telemetry.faults import FAULT_CATEGORY, Fault, FaultInjector, FaultKind, FaultRate


@dataclass(frozen=True, slots=True)
class FleetShard:
    """One contiguous VM shard of the fleet.

    ``unit`` matches the daily job's checkpoint shard labels, so a
    shard's events can be routed straight into the matching per-shard
    events partition.
    """

    index: int
    unit: str
    targets: tuple[str, ...]


def shard_unit(index: int) -> str:
    """Label of shard ``index`` (pipeline-compatible: ``shard-0000``)."""
    return f"shard-{index:04d}"


def split_fleet(targets: Sequence[str], shards: int) -> list[FleetShard]:
    """Split ``targets`` into contiguous balanced shards.

    Mirrors the checkpointed daily job's split exactly: ``len(targets)
    // shards`` targets per shard with the first ``len(targets) %
    shards`` shards one larger, never more shards than targets, and at
    least one (possibly empty-fleet) shard.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts = min(shards, len(targets)) or 1
    base, extra = divmod(len(targets), parts)
    out: list[FleetShard] = []
    cursor = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        out.append(FleetShard(
            index=index, unit=shard_unit(index),
            targets=tuple(targets[cursor:cursor + size]),
        ))
        cursor += size
    return out


def _shard_seed(seed: int, index: int) -> int:
    """Decorrelated per-shard seed (splitmix64 finalizer).

    Adjacent ``(seed, index)`` pairs must not produce adjacent RNG
    states, and the mix must be a pure function of its inputs so shard
    regeneration stays deterministic across runs and processes.
    """
    mask = (1 << 64) - 1
    z = (seed * 0x9E3779B97F4A7C15 + index + 0x9E3779B97F4A7C15) & mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    return (z ^ (z >> 31)) & mask


def shard_faults(shard: FleetShard, rates: Sequence[FaultRate],
                 start: float, end: float, *, seed: int = 0) -> list[Fault]:
    """Sample one shard's faults with its own decorrelated injector.

    A fresh :class:`FaultInjector` seeded from ``(seed, shard.index)``
    samples only this shard's targets, so the result is independent of
    every other shard — the whole point: any shard can be (re)generated
    in isolation, in any order, on any worker.
    """
    injector = FaultInjector(rates, seed=_shard_seed(seed, shard.index))
    return injector.sample(shard.targets, start, end)


def iter_fleet_faults(targets: Sequence[str], shards: int,
                      rates: Sequence[FaultRate], start: float, end: float,
                      *, seed: int = 0
                      ) -> Iterator[tuple[FleetShard, list[Fault]]]:
    """Generate ``(shard, faults)`` pairs one shard at a time.

    The generator holds one shard's faults at a time — consuming it
    with ingest-then-release keeps peak memory proportional to the
    largest shard, not the fleet.
    """
    for shard in split_fleet(targets, shards):
        yield shard, shard_faults(shard, rates, start, end, seed=seed)


# -- ground-truth labeled generation ------------------------------------------
#
# Closed-loop evaluation (the control layer's scorecard) needs to know
# which faults were deliberately injected and which are background: the
# detectors must find the injected incidents, and every fault that
# comes out of the generator therefore carries a provenance label.


@dataclass(frozen=True, slots=True)
class InjectedIncident:
    """One ground-truth incident deliberately injected into the fleet.

    An incident deterministically faults every (non-remediated) target
    in ``targets`` for ``seconds_per_day`` seconds on each day of
    ``[onset_day, onset_day + duration_days)``.  ``dimension`` /
    ``value`` record where the incident is concentrated in the fleet
    topology (e.g. ``cluster`` / the faulty cluster id) — the answer a
    root-cause localizer is scored against.

    ``pulses`` shapes *how* the day's damage is delivered: the default
    single pulse is one contiguous ``seconds_per_day`` outage, while
    ``pulses > 1`` splits the same total duration into that many equal
    slices, each starting ``pulse_interval`` seconds after the
    previous one.  Pulsed incidents model "brief but wide"
    interruptions — many distinct short occurrences whose summed
    downtime is small — the shape where a frequency KPI (AIR) and a
    duration-weighted KPI (CDI) disagree hardest.
    """

    incident_id: str
    kind: FaultKind
    targets: tuple[str, ...]
    onset_day: int
    duration_days: int
    seconds_per_day: float
    dimension: str = ""
    value: str = ""
    pulses: int = 1
    pulse_interval: float = 0.0

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError(f"incident {self.incident_id} has no targets")
        if self.onset_day < 0:
            raise ValueError(f"onset_day must be >= 0, got {self.onset_day}")
        if self.duration_days < 1:
            raise ValueError(
                f"duration_days must be >= 1, got {self.duration_days}"
            )
        if self.seconds_per_day <= 0:
            raise ValueError(
                f"seconds_per_day must be > 0, got {self.seconds_per_day}"
            )
        if self.pulses < 1:
            raise ValueError(f"pulses must be >= 1, got {self.pulses}")
        if self.pulses > 1:
            if self.pulse_interval <= self.seconds_per_day / self.pulses:
                raise ValueError(
                    "pulse_interval must exceed the per-pulse duration "
                    f"({self.seconds_per_day / self.pulses}), got "
                    f"{self.pulse_interval}"
                )

    @property
    def category(self) -> EventCategory:
        """Stability category the incident damages."""
        return FAULT_CATEGORY[self.kind]

    def active_on(self, day_index: int) -> bool:
        """Whether the incident is live on ``day_index``."""
        return self.onset_day <= day_index < self.onset_day + self.duration_days


@dataclass(frozen=True, slots=True)
class LabeledFault:
    """One generated fault plus its ground-truth provenance.

    ``incident_id`` names the :class:`InjectedIncident` the fault
    belongs to, or ``None`` for background (Poisson-process) faults.
    """

    fault: Fault
    incident_id: str | None = None

    @property
    def injected(self) -> bool:
        """Whether the fault came from a deliberate incident."""
        return self.incident_id is not None


def incident_faults(incident: InjectedIncident, *, start: float = 0.0,
                    excluded: AbstractSet[str] = frozenset()) -> list[Fault]:
    """One day's deterministic faults for one active incident.

    ``excluded`` lists targets whose incident damage has been
    remediated (e.g. the VM was migrated off the faulty cluster): they
    no longer produce the incident's faults, which is how an executed
    operation action feeds back into subsequent telemetry.

    A pulsed incident (``pulses > 1``) emits ``pulses`` faults per
    target, each ``seconds_per_day / pulses`` long and starting
    ``pulse_interval`` after the previous pulse, so the day's total
    injected duration per target equals ``seconds_per_day`` regardless
    of pulse count.
    """
    pulse_duration = incident.seconds_per_day / incident.pulses
    return [
        Fault(kind=incident.kind, target=target,
              start=start + pulse * incident.pulse_interval,
              duration=pulse_duration)
        for target in incident.targets if target not in excluded
        for pulse in range(incident.pulses)
    ]


def labeled_day_faults(targets: Sequence[str], rates: Sequence[FaultRate],
                       day_index: int, *, seed: int = 0, shards: int = 1,
                       incidents: Sequence[InjectedIncident] = (),
                       excluded: AbstractSet[str] = frozenset(),
                       day_seconds: float = 86400.0) -> list[LabeledFault]:
    """One fleet day of background + injected faults, all labeled.

    Background faults come from the shard-parallel generator with a
    per-day decorrelated seed (day ``d`` alone reproduces day ``d`` of
    any longer run); injected faults come from every incident active on
    ``day_index``, minus ``excluded`` (remediated) targets.  The result
    is sorted like :meth:`FaultInjector.sample` output so downstream
    ingestion is order-deterministic.
    """
    labeled: list[LabeledFault] = []
    day_seed = _shard_seed(seed, day_index)
    for _, faults in iter_fleet_faults(targets, shards, rates, 0.0,
                                       day_seconds, seed=day_seed):
        labeled.extend(LabeledFault(fault) for fault in faults)
    for incident in incidents:
        if not incident.active_on(day_index):
            continue
        labeled.extend(
            LabeledFault(fault, incident.incident_id)
            for fault in incident_faults(incident, excluded=excluded)
        )
    labeled.sort(key=lambda lf: (lf.fault.start, lf.fault.target,
                                 lf.fault.kind.value,
                                 lf.incident_id or ""))
    return labeled

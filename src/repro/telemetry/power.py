"""Multi-granularity power telemetry (Section II-B, Case 7).

The Data Collector gathers power metrics "across a spectrum of
granularity, including the racks, machines, hardware components, CPU
sockets, and individual physical cores".  This module models that
hierarchy: core readings are generated, each higher level aggregates
its children plus a level-specific overhead (PSU losses, fans, ...),
so cross-level consistency checks are possible — exactly the check
that would have caught Case 7's zero-reading sensors early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.telemetry.faults import Fault, FaultKind


@dataclass(frozen=True, slots=True)
class PowerNode:
    """One node in the power topology (rack → machine → socket → core)."""

    node_id: str
    level: str
    children: tuple["PowerNode", ...] = ()
    overhead_watts: float = 0.0

    def walk(self) -> Iterator["PowerNode"]:
        """This node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_power_topology(*, racks: int = 1, machines_per_rack: int = 2,
                         sockets_per_machine: int = 2,
                         cores_per_socket: int = 8) -> list[PowerNode]:
    """A rack/machine/socket/core tree with realistic overheads."""
    if min(racks, machines_per_rack, sockets_per_machine,
           cores_per_socket) < 1:
        raise ValueError("all topology counts must be >= 1")
    rack_nodes = []
    for r in range(racks):
        machine_nodes = []
        for m in range(machines_per_rack):
            socket_nodes = []
            for s in range(sockets_per_machine):
                core_nodes = tuple(
                    PowerNode(
                        node_id=f"rack-{r}/machine-{m}/socket-{s}/core-{c}",
                        level="core",
                    )
                    for c in range(cores_per_socket)
                )
                socket_nodes.append(PowerNode(
                    node_id=f"rack-{r}/machine-{m}/socket-{s}",
                    level="socket", children=core_nodes,
                    overhead_watts=8.0,   # uncore/memory controller
                ))
            machine_nodes.append(PowerNode(
                node_id=f"rack-{r}/machine-{m}", level="machine",
                children=tuple(socket_nodes),
                overhead_watts=60.0,      # fans, disks, NIC, PSU loss
            ))
        rack_nodes.append(PowerNode(
            node_id=f"rack-{r}", level="rack",
            children=tuple(machine_nodes),
            overhead_watts=120.0,         # rack switching/cooling
        ))
    return rack_nodes


class PowerTelemetry:
    """Generates consistent power readings for a whole topology.

    Core powers follow a seasonal utilization curve with noise;
    higher-level readings equal the sum of their children plus the
    node's overhead.  ``POWER_SENSOR_ZERO`` faults zero out the
    affected node's *own* reported reading (children keep reporting),
    which is how the Case 7 bug broke cross-level consistency.
    """

    def __init__(self, seed: int = 0, *, core_base: float = 4.0,
                 core_amplitude: float = 2.0, noise: float = 0.2) -> None:
        self._seed = seed
        self._core_base = core_base
        self._core_amplitude = core_amplitude
        self._noise = noise

    def _core_series(self, node_id: str, times: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(
            abs(hash((self._seed, node_id))) % (2**32)
        )
        phase = 2.0 * np.pi * (times % 86400.0) / 86400.0
        seasonal = self._core_amplitude * np.sin(phase - np.pi / 2)
        return np.maximum(
            0.5, self._core_base + seasonal + rng.normal(0, self._noise,
                                                         times.shape)
        )

    def readings(self, roots: Sequence[PowerNode], times: np.ndarray,
                 faults: Sequence[Fault] = ()) -> dict[str, np.ndarray]:
        """True-consistency readings per node id, faults applied."""
        zeroed: dict[str, list[Fault]] = {}
        for fault in faults:
            if fault.kind is FaultKind.POWER_SENSOR_ZERO:
                zeroed.setdefault(fault.target, []).append(fault)

        readings: dict[str, np.ndarray] = {}

        def compute(node: PowerNode) -> np.ndarray:
            if node.level == "core":
                true_power = self._core_series(node.node_id, times)
            else:
                children_sum = np.zeros_like(times, dtype=float)
                for child in node.children:
                    children_sum = children_sum + compute(child)
                true_power = children_sum + node.overhead_watts
            reported = true_power.copy()
            for fault in zeroed.get(node.node_id, ()):
                mask = (times >= fault.start) & (times < fault.end)
                reported[mask] = 0.0
            readings[node.node_id] = reported
            return true_power  # children aggregation uses true values

        for root in roots:
            compute(root)
        return readings


@dataclass(frozen=True, slots=True)
class ConsistencyViolation:
    """A parent reading inconsistent with its children's sum."""

    node_id: str
    time_index: int
    parent_reading: float
    children_sum: float


def check_consistency(roots: Sequence[PowerNode],
                      readings: Mapping[str, np.ndarray],
                      *, tolerance: float = 0.05
                      ) -> list[ConsistencyViolation]:
    """Flag parents whose reading deviates from children + overhead.

    ``tolerance`` is relative to the expected value.  This is the data
    -quality monitor Case 7 motivated: a zeroed parent sensor is
    instantly inconsistent with its still-reporting children.
    """
    violations: list[ConsistencyViolation] = []
    for root in roots:
        for node in root.walk():
            if not node.children:
                continue
            children_sum = sum(
                readings[child.node_id] for child in node.children
            ) + node.overhead_watts
            parent = readings[node.node_id]
            with np.errstate(divide="ignore", invalid="ignore"):
                deviation = np.abs(parent - children_sum) / np.maximum(
                    children_sum, 1e-9
                )
            for index in np.flatnonzero(deviation > tolerance):
                violations.append(ConsistencyViolation(
                    node_id=node.node_id,
                    time_index=int(index),
                    parent_reading=float(parent[index]),
                    children_sum=float(children_sum[index]),
                ))
    return violations

"""Synthetic customer support tickets.

Two uses in the paper:

* Fig. 2 categorizes 18 months of stability tickets into
  unavailability (27%), performance (44%) and control-plane (29%);
* ticket counts per event name feed the customer weight perspective
  (Section IV-C), via a ticket classification model on PAI (Fig. 4).

This module renders tickets with realistic category mixture and noisy
natural-language text that the naive-Bayes classifier in
:mod:`repro.tickets.classifier` has to categorize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.events import EventCategory

#: The paper's observed ticket mixture (Fig. 2).
PAPER_TICKET_MIXTURE: Mapping[EventCategory, float] = {
    EventCategory.UNAVAILABILITY: 0.27,
    EventCategory.PERFORMANCE: 0.44,
    EventCategory.CONTROL_PLANE: 0.29,
}

#: Text fragments per category; tickets concatenate a few of these.
TICKET_PHRASES: Mapping[EventCategory, tuple[str, ...]] = {
    EventCategory.UNAVAILABILITY: (
        "instance crashed and is unreachable",
        "VM suddenly went down during business hours",
        "server not responding to ping or ssh",
        "machine froze and had to be force restarted",
        "instance offline outage reported by monitoring",
    ),
    EventCategory.PERFORMANCE: (
        "API latency increased markedly on this instance",
        "disk IO is very slow reads take seconds",
        "network packet loss degrading application throughput",
        "CPU performance dropped after yesterday",
        "database queries much slower than identical instance",
    ),
    EventCategory.CONTROL_PLANE: (
        "cannot start the instance from the console",
        "stop request fails with internal error",
        "unable to resize instance via management API",
        "console login broken monitoring metrics missing",
        "purchase and modify operations keep failing",
    ),
}

#: Generic filler mixed into every ticket to keep classification
#: non-trivial.
FILLER_PHRASES = (
    "please investigate urgently",
    "this affects our production workload",
    "started this morning",
    "customer id attached",
    "no recent changes on our side",
)


@dataclass(frozen=True, slots=True)
class Ticket:
    """One customer support ticket."""

    time: float
    target: str
    text: str
    category: EventCategory  # ground-truth label (hidden from classifier)
    related_event: str | None = None


class TicketGenerator:
    """Samples tickets with a configurable category mixture."""

    def __init__(self, seed: int = 0,
                 mixture: Mapping[EventCategory, float] = PAPER_TICKET_MIXTURE,
                 ) -> None:
        total = sum(mixture.values())
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self._categories = list(mixture)
        self._probs = np.array([mixture[c] / total for c in self._categories])
        self._rng = np.random.default_rng(seed)

    def generate(self, count: int, targets: Sequence[str],
                 start: float = 0.0, end: float = 86400.0,
                 event_names: Mapping[EventCategory, Sequence[str]] | None = None,
                 ) -> list[Ticket]:
        """Draw ``count`` tickets over ``[start, end)``.

        When ``event_names`` is given, each ticket is attributed to a
        uniformly chosen event name of its category — the attribution
        the customer-weight pipeline counts.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if not targets:
            raise ValueError("at least one target is required")
        tickets: list[Ticket] = []
        for _ in range(count):
            category = self._categories[
                int(self._rng.choice(len(self._categories), p=self._probs))
            ]
            phrases = TICKET_PHRASES[category]
            body = phrases[int(self._rng.integers(len(phrases)))]
            filler = FILLER_PHRASES[int(self._rng.integers(len(FILLER_PHRASES)))]
            related = None
            if event_names and event_names.get(category):
                names = event_names[category]
                related = names[int(self._rng.integers(len(names)))]
            tickets.append(
                Ticket(
                    time=float(self._rng.uniform(start, end)),
                    target=str(targets[int(self._rng.integers(len(targets)))]),
                    text=f"{body}; {filler}",
                    category=category,
                    related_event=related,
                )
            )
        tickets.sort(key=lambda t: t.time)
        return tickets


def ticket_counts_by_event(tickets: Sequence[Ticket]) -> dict[str, int]:
    """Related-ticket count per event name (customer weight input)."""
    counts: dict[str, int] = {}
    for ticket in tickets:
        if ticket.related_event is not None:
            counts[ticket.related_event] = counts.get(ticket.related_event, 0) + 1
    return counts

"""Fleet topology: regions → availability zones → clusters → NCs → VMs.

The paper's production fleet has over a million physical servers
(Section II).  This module builds deterministic synthetic fleets with
the same hierarchy so BI drill-downs (region / AZ / cluster, Section V)
and architecture experiments (dedicated vs shared VMs on homogeneous
vs hybrid hosts, Section VI-B) have realistic structure to work with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


class VmType(enum.Enum):
    """Product type of a VM (paper Case 5)."""

    DEDICATED = "dedicated"  # exclusive physical cores
    SHARED = "shared"        # cores shared with other tenants


class DeploymentArch(enum.Enum):
    """Host deployment architecture (paper Fig. 7)."""

    HOMOGENEOUS = "homogeneous"  # dedicated and shared VMs on separate NCs
    HYBRID = "hybrid"            # both VM types on the same NC


@dataclass(frozen=True, slots=True)
class VirtualMachine:
    """One customer VM."""

    vm_id: str
    nc_id: str
    vm_type: VmType
    cores: int

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"VM {self.vm_id} must have >= 1 core")


@dataclass(frozen=True, slots=True)
class NodeController:
    """One physical machine hosting VMs (paper Table I: NC)."""

    nc_id: str
    cluster_id: str
    machine_model: str
    cores: int
    arch: DeploymentArch

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"NC {self.nc_id} must have >= 1 core")


@dataclass(frozen=True, slots=True)
class Cluster:
    """A group of NCs within an availability zone."""

    cluster_id: str
    az_id: str


@dataclass(frozen=True, slots=True)
class AvailabilityZone:
    """An AZ within a region."""

    az_id: str
    region_id: str


@dataclass
class Fleet:
    """A fully built fleet with index structures for drill-down."""

    regions: list[str] = field(default_factory=list)
    azs: dict[str, AvailabilityZone] = field(default_factory=dict)
    clusters: dict[str, Cluster] = field(default_factory=dict)
    ncs: dict[str, NodeController] = field(default_factory=dict)
    vms: dict[str, VirtualMachine] = field(default_factory=dict)

    def vms_on(self, nc_id: str) -> list[VirtualMachine]:
        """All VMs hosted on one NC."""
        return [vm for vm in self.vms.values() if vm.nc_id == nc_id]

    def nc_of(self, vm_id: str) -> NodeController:
        """Host NC of a VM."""
        return self.ncs[self.vms[vm_id].nc_id]

    def cluster_of(self, vm_id: str) -> Cluster:
        """Cluster of a VM's host."""
        return self.clusters[self.nc_of(vm_id).cluster_id]

    def az_of(self, vm_id: str) -> AvailabilityZone:
        """AZ of a VM's host."""
        return self.azs[self.cluster_of(vm_id).az_id]

    def region_of(self, vm_id: str) -> str:
        """Region of a VM's host."""
        return self.az_of(vm_id).region_id

    def dimensions_of(self, vm_id: str) -> dict[str, str]:
        """All drill-down dimensions of one VM (for BI aggregation)."""
        vm = self.vms[vm_id]
        nc = self.ncs[vm.nc_id]
        cluster = self.clusters[nc.cluster_id]
        az = self.azs[cluster.az_id]
        return {
            "vm": vm.vm_id,
            "nc": nc.nc_id,
            "machine_model": nc.machine_model,
            "arch": nc.arch.value,
            "vm_type": vm.vm_type.value,
            "cluster": cluster.cluster_id,
            "az": az.az_id,
            "region": az.region_id,
        }

    def iter_vm_ids(self) -> Iterator[str]:
        """All VM ids in deterministic order."""
        return iter(sorted(self.vms))


def build_fleet(
    *,
    seed: int = 0,
    regions: int = 1,
    azs_per_region: int = 2,
    clusters_per_az: int = 2,
    ncs_per_cluster: int = 4,
    vms_per_nc: int = 4,
    machine_models: tuple[str, ...] = ("M1", "M2"),
    arch: DeploymentArch = DeploymentArch.HOMOGENEOUS,
    shared_fraction: float = 0.5,
    nc_cores: int = 104,
) -> Fleet:
    """Build a deterministic synthetic fleet.

    Under ``HOMOGENEOUS`` deployment every NC hosts a single VM type
    (dedicated-only or shared-only pools, Fig. 7a/b); under ``HYBRID``
    both types share each NC on disjoint core ranges (Fig. 7c).
    ``shared_fraction`` controls the share of shared-VM capacity.
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
    rng = np.random.default_rng(seed)
    fleet = Fleet()
    vm_counter = 0
    for r in range(regions):
        region_id = f"region-{r}"
        fleet.regions.append(region_id)
        for a in range(azs_per_region):
            az_id = f"{region_id}/az-{chr(ord('a') + a)}"
            fleet.azs[az_id] = AvailabilityZone(az_id=az_id, region_id=region_id)
            for c in range(clusters_per_az):
                cluster_id = f"{az_id}/cluster-{c}"
                fleet.clusters[cluster_id] = Cluster(
                    cluster_id=cluster_id, az_id=az_id
                )
                for n in range(ncs_per_cluster):
                    nc_id = f"{cluster_id}/nc-{n}"
                    model = machine_models[
                        int(rng.integers(len(machine_models)))
                    ]
                    fleet.ncs[nc_id] = NodeController(
                        nc_id=nc_id, cluster_id=cluster_id,
                        machine_model=model, cores=nc_cores, arch=arch,
                    )
                    if arch is DeploymentArch.HOMOGENEOUS:
                        # Whole-NC pools: NC index decides the pool.
                        nc_shared = n < round(ncs_per_cluster * shared_fraction)
                        types = [
                            VmType.SHARED if nc_shared else VmType.DEDICATED
                        ] * vms_per_nc
                    else:
                        shared_count = round(vms_per_nc * shared_fraction)
                        types = (
                            [VmType.SHARED] * shared_count
                            + [VmType.DEDICATED] * (vms_per_nc - shared_count)
                        )
                    for vm_type in types:
                        vm_id = f"vm-{vm_counter:06d}"
                        vm_counter += 1
                        fleet.vms[vm_id] = VirtualMachine(
                            vm_id=vm_id, nc_id=nc_id, vm_type=vm_type,
                            cores=max(1, nc_cores // (vms_per_nc * 2)),
                        )
    return fleet

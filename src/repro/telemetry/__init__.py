"""Deterministic cloud-fleet simulator (production telemetry stand-in).

* :mod:`repro.telemetry.topology` — regions/AZs/clusters/NCs/VMs.
* :mod:`repro.telemetry.faults` — fault ground truth and Poisson
  injection.
* :mod:`repro.telemetry.fleetgen` — shard-parallel generator-based
  fault production for out-of-core fleet scales.
* :mod:`repro.telemetry.metrics` — seasonal metric series with fault
  overlays.
* :mod:`repro.telemetry.logs` — log rendering (NIC flaps, panics, ...).
* :mod:`repro.telemetry.tickets` — customer ticket generation.
"""

from repro.telemetry.faults import (
    FAULT_CATEGORY,
    Fault,
    FaultInjector,
    FaultKind,
    FaultRate,
    baseline_rates,
)
from repro.telemetry.fleetgen import (
    FleetShard,
    iter_fleet_faults,
    shard_faults,
    split_fleet,
)
from repro.telemetry.logs import LogGenerator, LogLine, render_fault_logs
from repro.telemetry.metrics import (
    CPU_FREQ,
    CPU_POWER,
    CPU_STEAL,
    DEFAULT_SPECS,
    HEARTBEAT,
    PACKET_LOSS_RATE,
    READ_LATENCY,
    MetricGenerator,
    MetricSample,
    SeriesSpec,
)
from repro.telemetry.power import (
    ConsistencyViolation,
    PowerNode,
    PowerTelemetry,
    build_power_topology,
    check_consistency,
)
from repro.telemetry.tickets import (
    PAPER_TICKET_MIXTURE,
    Ticket,
    TicketGenerator,
    ticket_counts_by_event,
)
from repro.telemetry.topology import (
    AvailabilityZone,
    Cluster,
    DeploymentArch,
    Fleet,
    NodeController,
    VirtualMachine,
    VmType,
    build_fleet,
)

__all__ = [
    "AvailabilityZone",
    "CPU_FREQ",
    "CPU_POWER",
    "CPU_STEAL",
    "Cluster",
    "ConsistencyViolation",
    "DEFAULT_SPECS",
    "DeploymentArch",
    "FAULT_CATEGORY",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultRate",
    "Fleet",
    "FleetShard",
    "HEARTBEAT",
    "LogGenerator",
    "LogLine",
    "MetricGenerator",
    "MetricSample",
    "NodeController",
    "PACKET_LOSS_RATE",
    "PAPER_TICKET_MIXTURE",
    "PowerNode",
    "PowerTelemetry",
    "READ_LATENCY",
    "SeriesSpec",
    "Ticket",
    "TicketGenerator",
    "VirtualMachine",
    "VmType",
    "baseline_rates",
    "build_fleet",
    "build_power_topology",
    "check_consistency",
    "iter_fleet_faults",
    "render_fault_logs",
    "shard_faults",
    "split_fleet",
    "ticket_counts_by_event",
]

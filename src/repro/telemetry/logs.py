"""Synthetic system logs rendered from injected faults.

The Event Extractor's expert rules parse raw log lines (paper Fig. 1:
``eth0 NIC Link is Down`` becomes a ``nic_flapping`` event).  This
module renders fault ground truth into exactly those log shapes, plus
benign chatter lines the extractor must learn to discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.telemetry.faults import Fault, FaultKind


@dataclass(frozen=True, slots=True)
class LogLine:
    """One raw log line from a target."""

    time: float
    target: str
    line: str


#: Benign lines sprinkled between fault signatures (Fig. 1 shows two
#: discarded entries around the NIC-down line).
_NOISE_LINES = (
    "systemd[1]: Started Daily apt download activities.",
    "kernel: audit: backlog limit exceeded",
    "sshd[2211]: Accepted publickey for admin",
    "kernel: perf: interrupt took too long",
    "chronyd[801]: Selected source 10.0.0.1",
)


def render_fault_logs(fault: Fault) -> list[LogLine]:
    """Log lines a fault of this kind writes on its target."""
    lines: list[LogLine] = []

    def emit(offset: float, text: str) -> None:
        lines.append(LogLine(time=fault.start + offset, target=fault.target,
                             line=text))

    if fault.kind is FaultKind.NIC_FLAPPING:
        emit(0.0, "kernel: eth0 NIC Link is Down")
        emit(min(2.0, fault.duration), "kernel: eth0 NIC Link is Up")
    elif fault.kind is FaultKind.VM_DOWN:
        emit(0.0, "qemu: guest panicked, terminating on signal")
    elif fault.kind is FaultKind.VM_HANG:
        emit(0.0, "kernel: watchdog: BUG: soft lockup - CPU stuck")
    elif fault.kind is FaultKind.NC_DOWN:
        emit(0.0, "kernel: Machine Check Exception: fatal hardware error")
    elif fault.kind is FaultKind.GPU_DROP:
        emit(0.0, "kernel: NVRM: Xid (PCI:0000:3b:00): GPU has fallen off the bus")
    elif fault.kind is FaultKind.SLOW_IO:
        emit(0.0, "kernel: blk_update_request: I/O error, dev vda")
    elif fault.kind is FaultKind.DDOS_BLACKHOLE:
        emit(0.0, "netsec: blackhole route added for attacked address")
        emit(fault.duration, "netsec: blackhole route removed for address")
    elif fault.kind is FaultKind.CONTROL_API_OUTAGE:
        emit(0.0, "apiserver: authentication failed: whitelist incomplete")
    elif fault.kind is FaultKind.CONSOLE_OUTAGE:
        emit(0.0, "console: login handler timeout exceeded")
    return lines


class LogGenerator:
    """Renders faults plus background chatter into a log stream."""

    def __init__(self, seed: int = 0, noise_per_target_per_hour: float = 2.0) -> None:
        if noise_per_target_per_hour < 0:
            raise ValueError("noise rate must be >= 0")
        self._rng = np.random.default_rng(seed)
        self._noise_rate = noise_per_target_per_hour

    def emit(self, targets: Iterable[str], start: float, end: float,
             faults: Sequence[Fault] = ()) -> list[LogLine]:
        """All log lines over ``[start, end)``, time-sorted."""
        if end <= start:
            raise ValueError(f"window reversed: [{start}, {end})")
        lines: list[LogLine] = []
        for fault in faults:
            lines.extend(
                line for line in render_fault_logs(fault)
                if start <= line.time < end
            )
        hours = (end - start) / 3600.0
        for target in targets:
            count = int(self._rng.poisson(self._noise_rate * hours))
            for _ in range(count):
                at = float(self._rng.uniform(start, end))
                text = _NOISE_LINES[int(self._rng.integers(len(_NOISE_LINES)))]
                lines.append(LogLine(time=at, target=target, line=text))
        lines.sort(key=lambda l: (l.time, l.target))
        return lines

"""The closed loop: detect → localize → act → evaluate, day by day.

Each simulated day, the controller

1. **generates** the fleet's labeled faults (background mix plus any
   active injected incidents, minus remediated VMs) and runs the real
   daily CDI job over the resulting events;
2. **detects** — the consensus detector
   (:meth:`~repro.analytics.detect.CdiCurveDetector.detect_consensus`,
   rolling K-Sigma *and* EVT agreeing on the direction) scans each
   sub-metric's daily fleet curve; a spike confirmed on the current
   day opens an *episode* unless one is already open for that
   category (the cooldown — repeat confirmations of an ongoing
   problem are suppressed, not double-acted);
3. **localizes** the new episode across topology dimensions with the
   Adtributor-style RCA over per-VM damage
   (:func:`~repro.analytics.rca.localize`);
4. **acts** — affected VMs are A/B-split between the category's
   operation action and a ``null_action`` comparison arm, and the
   whole day's actions go through the Operation Platform in one
   batch, so priorities order execution and
   :meth:`~repro.cloudbot.actions.Action.conflicts_with` discards
   double-treatment (the null arm is never disruptive and never
   discarded);
5. **feeds back** — an executed real action *remediates* its VM: from
   the next day on the VM stops producing injected-incident faults
   (background noise continues), which is the modeled effect the
   evaluation measures;
6. **evaluates** — after the observation window, each arm's per-VM
   daily CDI reports flow through the existing omnibus + post-hoc
   ladder (:func:`~repro.abtest.effectiveness.
   evaluate_rule_effectiveness`); an effective action is rolled out
   to the null arm.

The run returns a :class:`~repro.control.scorecard.Scorecard` pinning
detection latency, precision/recall against the injected ground
truth, RCA localization accuracy, and realized CDI improvement per
action.  Every quantity is a deterministic function of the scenario
seed; reruns — on either executor backend — serialize byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.abtest.effectiveness import (
    NULL_VARIANT,
    evaluate_rule_effectiveness,
)
from repro.abtest.experiment import AbExperiment, Variant
from repro.analytics.detect import CdiCurveDetector
from repro.analytics.rca import RootCause, localize, vm_damage_leaves
from repro.cloudbot.actions import Action, ActionType
from repro.cloudbot.platform import ExecutionStatus, OperationPlatform
from repro.control.scenario import ControlScenario
from repro.control.scorecard import ActionOutcome, IncidentOutcome, Scorecard
from repro.core.events import Event, EventCategory, default_catalog
from repro.core.indicator import CdiReport, ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import DailyCdiJob
from repro.scenarios.common import default_weights, fault_to_period
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.fleetgen import labeled_day_faults

#: Operation action submitted for each damaged sub-metric: move the VM
#: off its host when it is unreachable, reboot it in place when it is
#: degraded, repair the management agent when the control plane fails.
CATEGORY_ACTION: Mapping[EventCategory, ActionType] = {
    EventCategory.UNAVAILABILITY: ActionType.LIVE_MIGRATION,
    EventCategory.PERFORMANCE: ActionType.IN_PLACE_REBOOT,
    EventCategory.CONTROL_PLANE: ActionType.PROCESS_REPAIR,
}

#: Execution priorities: restoring availability outranks performance
#: and control-plane repairs; the null arm always yields.
ACTION_PRIORITY: Mapping[ActionType, int] = {
    ActionType.LIVE_MIGRATION: 10,
    ActionType.IN_PLACE_REBOOT: 5,
    ActionType.PROCESS_REPAIR: 5,
    ActionType.NULL_ACTION: 0,
}


@dataclass(frozen=True, slots=True)
class ControllerConfig:
    """Tunables of the closed loop (defaults match the seeded tests)."""

    window: int = 7           # rolling K-Sigma window (days)
    k: float = 4.0            # K-Sigma threshold
    calibration: int = 10     # EVT calibration prefix (days)
    q: float = 1e-4           # EVT tail quantile
    baseline_days: int = 7    # RCA trailing baseline window
    observation_days: int = 3  # post-action A/B observation window
    min_arm_size: int = 2     # below this, fall back to alternating
    alpha: float = 0.05       # significance level of the A/B ladder
    expire_interval: float = 600.0  # synthetic events' expire interval

    def __post_init__(self) -> None:
        if self.observation_days < 1:
            raise ValueError(
                f"observation_days must be >= 1, got {self.observation_days}"
            )
        if self.baseline_days < 2:
            raise ValueError(
                f"baseline_days must be >= 2, got {self.baseline_days}"
            )


@dataclass
class Episode:
    """One confirmed detection and everything the loop did about it."""

    episode_id: str
    category: EventCategory
    opened_day: int
    root_cause: RootCause | None
    matched_incident: str | None
    action_type: ActionType
    treated: tuple[str, ...]
    control: tuple[str, ...]
    experiment: AbExperiment
    evaluation_day: int
    executed: int = 0
    discarded_conflict: int = 0
    failed: int = 0
    outcome: ActionOutcome | None = None


def _report_of(row: Mapping[str, Any]) -> CdiReport:
    """A vm_cdi output row as a :class:`CdiReport`."""
    return CdiReport(
        unavailability=row["unavailability"],
        performance=row["performance"],
        control_plane=row["control_plane"],
        service_time=row["service_time"],
    )


class ClosedLoopController:
    """Runs one scenario through the full detect→act→evaluate loop."""

    def __init__(self, scenario: ControlScenario, *,
                 config: ControllerConfig | None = None,
                 context: EngineContext | None = None) -> None:
        self._scenario = scenario
        self._config = config or ControllerConfig()
        self._catalog = default_catalog()
        self._context = context or EngineContext(parallelism=2)
        self._job = DailyCdiJob(self._context, TableStore(), ConfigDB(),
                                self._catalog)
        self._job.store_weights(default_weights())
        self._platform = OperationPlatform(scenario.fleet)
        self._detector = CdiCurveDetector(
            window=self._config.window, k=self._config.k,
            calibration=self._config.calibration, q=self._config.q,
        )
        self._services = {
            vm: ServicePeriod(0.0, scenario.day_seconds)
            for vm in scenario.vm_ids
        }
        self._curves: dict[EventCategory, list[float]] = {
            category: [] for category in EventCategory
        }
        self._vm_rows: list[list[dict[str, Any]]] = []
        self._remediated: set[str] = set()
        self._episodes: list[Episode] = []
        self._open: dict[EventCategory, Episode] = {}
        self._suppressed = 0

    @property
    def platform(self) -> OperationPlatform:
        """The Operation Platform (audit log, placements, tickets)."""
        return self._platform

    @property
    def episodes(self) -> list[Episode]:
        """All episodes opened so far, in confirmation order."""
        return list(self._episodes)

    def curve(self, category: EventCategory) -> list[float]:
        """The daily fleet curve of one sub-metric, so far."""
        return list(self._curves[category])

    # -- the loop ----------------------------------------------------------

    def run(self) -> Scorecard:
        """Tick through every scenario day and score the run."""
        for day in range(self._scenario.days):
            self._tick(day)
        return self._scorecard()

    def _tick(self, day: int) -> None:
        """One day: telemetry → CDI job → evaluate due → detect/act."""
        partition = f"day{day:02d}"
        labeled = labeled_day_faults(
            self._scenario.vm_ids, self._scenario.rates, day,
            seed=self._scenario.seed,
            incidents=self._scenario.incidents,
            excluded=frozenset(self._remediated),
            day_seconds=self._scenario.day_seconds,
        )
        events = [self._fault_event(lf.fault) for lf in labeled]
        self._job.ingest_events(events, partition)
        result = self._job.run(partition, self._services)
        vm_rows, _ = self._job.output_rows(partition)
        self._vm_rows.append(vm_rows)
        for category in EventCategory:
            self._curves[category].append(
                result.fleet_report.sub_metric(category)
            )
        self._evaluate_due(day)
        self._detect_and_act(day)

    def _fault_event(self, fault: Any) -> Event:
        """A fault as the event the extractor would have produced."""
        period = fault_to_period(fault, self._catalog)
        return Event(
            name=period.name, time=period.end, target=period.target,
            expire_interval=self._config.expire_interval,
            level=period.level,
            attributes={"duration": period.duration},
        )

    # -- detection and action ------------------------------------------------

    def _detect_and_act(self, day: int) -> None:
        """Open episodes for today's confirmed spikes and act on them."""
        fresh: list[Episode] = []
        for category in EventCategory:
            detections = self._detector.detect_consensus(
                self._curves[category]
            )
            confirmed_today = [
                d for d in detections
                if d.index == day and d.direction == "spike"
            ]
            if not confirmed_today:
                continue
            if category in self._open:
                # Cooldown: the ongoing episode already owns this
                # category's anomaly — don't act twice on one problem.
                self._suppressed += 1
                continue
            fresh.append(self._prepare_episode(
                category, day, len(self._episodes) + len(fresh)
            ))
        if not fresh:
            return
        # One submission batch for the whole day: priorities order
        # execution across episodes and conflicting double-treatments
        # (two disruptive actions on one VM) are discarded, exactly as
        # the Operation Platform would in production.
        by_rule = {episode.episode_id: episode for episode in fresh}
        batch: list[Action] = []
        for episode in fresh:
            batch.extend(self._episode_actions(episode))
        for record in self._platform.submit(batch):
            episode = by_rule[record.action.source_rule]
            if record.action.type is ActionType.NULL_ACTION:
                continue
            if record.status is ExecutionStatus.EXECUTED:
                episode.executed += 1
                self._remediated.add(record.action.target)
            elif record.status is ExecutionStatus.DISCARDED_CONFLICT:
                episode.discarded_conflict += 1
            else:
                episode.failed += 1
        for episode in fresh:
            self._episodes.append(episode)
            self._open[episode.category] = episode

    def _prepare_episode(self, category: EventCategory, day: int,
                         index: int) -> Episode:
        """Localize a confirmed spike and A/B-split the affected VMs."""
        cause = self._localize(category, day)
        affected = self._affected_vms(cause)
        action_type = CATEGORY_ACTION[category]
        treated, control, experiment = self._assign_arms(
            action_type, affected, index
        )
        return Episode(
            episode_id=f"ep-{index:02d}",
            category=category,
            opened_day=day,
            root_cause=cause,
            matched_incident=self._match_incident(category, day),
            action_type=action_type,
            treated=treated,
            control=control,
            experiment=experiment,
            evaluation_day=day + self._config.observation_days,
        )

    def _localize(self, category: EventCategory,
                  day: int) -> RootCause | None:
        """RCA: today's per-VM damage vs the trailing baseline."""
        if day == 0:
            return None
        metric = category.value  # vm_cdi column names match categories
        start = max(0, day - self._config.baseline_days)
        expected: dict[str, list[float]] = {}
        for rows in self._vm_rows[start:day]:
            for row in rows:
                expected.setdefault(row["vm"], []).append(
                    row[metric] * row["service_time"]
                )
        actual = {
            row["vm"]: row[metric] * row["service_time"]
            for row in self._vm_rows[day]
        }
        return localize(vm_damage_leaves(
            expected, actual, self._scenario.fleet.dimensions_of
        ))

    def _affected_vms(self, cause: RootCause | None) -> list[str]:
        """VMs inside the localized scope, sorted.

        Without a localization the whole fleet is in scope.  VMs
        already remediated by an earlier episode are skipped (nothing
        left to fix there) unless that would empty the scope.
        """
        vm_ids = self._scenario.vm_ids
        if cause is None:
            affected = vm_ids
        else:
            values = set(cause.values)
            dimensions_of = self._scenario.fleet.dimensions_of
            affected = [
                vm for vm in vm_ids
                if dimensions_of(vm).get(cause.dimension) in values
            ]
        pending = [vm for vm in affected if vm not in self._remediated]
        return pending or affected

    def _assign_arms(
        self, action_type: ActionType, affected: list[str], index: int,
    ) -> tuple[tuple[str, ...], tuple[str, ...], AbExperiment]:
        """Seeded 50/50 split into action arm and null arm.

        The assignment seed derives from the scenario seed and episode
        index, so reruns reproduce identical arms.  If randomization
        leaves either arm below ``min_arm_size``, a deterministic
        alternating split replaces it — the A/B comparison must always
        have two populated arms.
        """
        label = action_type.label
        experiment = AbExperiment(
            rule_name=f"closed-loop/{label}",
            variants=(Variant(label, 0.5), Variant(NULL_VARIANT, 0.5)),
            seed=self._scenario.seed * 1009 + 31 * index + 7,
        )
        treated: list[str] = []
        control: list[str] = []
        for vm in affected:
            arm = experiment.assign(vm).name
            (treated if arm == label else control).append(vm)
        floor = self._config.min_arm_size
        if len(treated) < floor or len(control) < floor:
            treated, control = affected[0::2], affected[1::2]
        return tuple(treated), tuple(control), experiment

    def _episode_actions(self, episode: Episode) -> list[Action]:
        """The submission batch for one episode (action + null arms)."""
        actions = [
            Action(type=episode.action_type, target=vm,
                   priority=ACTION_PRIORITY[episode.action_type],
                   source_rule=episode.episode_id)
            for vm in episode.treated
        ]
        actions.extend(
            Action(type=ActionType.NULL_ACTION, target=vm,
                   priority=ACTION_PRIORITY[ActionType.NULL_ACTION],
                   source_rule=episode.episode_id)
            for vm in episode.control
        )
        return actions

    def _match_incident(self, category: EventCategory,
                        day: int) -> str | None:
        """Ground-truth incident active today in this category, if any."""
        for incident in self._scenario.incidents:
            if incident.category is category and incident.active_on(day):
                return incident.incident_id
        return None

    # -- evaluation ----------------------------------------------------------

    def _evaluate_due(self, day: int) -> None:
        """Close episodes whose observation window ended (or run did)."""
        last_day = day == self._scenario.days - 1
        for category in list(self._open):
            episode = self._open[category]
            if day >= episode.evaluation_day or last_day:
                self._evaluate(episode, day)
                del self._open[category]

    def _evaluate(self, episode: Episode, day: int) -> None:
        """A/B-evaluate one episode over its observation window.

        Each arm VM contributes one CDI report per observation day.
        The verdict comes from the existing omnibus + post-hoc ladder
        via :func:`evaluate_rule_effectiveness`; when the action beats
        the null arm it is rolled out to the null-arm VMs, closing the
        loop.  Episodes cut short by the run's end with fewer than
        three samples per arm are reported without statistics.
        """
        label = episode.action_type.label
        end = min(episode.opened_day + self._config.observation_days, day)
        for obs_day in range(episode.opened_day + 1, end + 1):
            rows = {row["vm"]: row for row in self._vm_rows[obs_day]}
            for vm in episode.treated:
                episode.experiment.record(vm, label, _report_of(rows[vm]))
            for vm in episode.control:
                episode.experiment.record(
                    vm, NULL_VARIANT, _report_of(rows[vm])
                )
        counts = episode.experiment.counts()
        effective = False
        pvalue: float | None = None
        null_mean: float | None = None
        action_mean: float | None = None
        if min(counts.values(), default=0) >= 3:
            results = evaluate_rule_effectiveness(
                episode.experiment, alpha=self._config.alpha
            )
            verdict = results[episode.category]
            effective = verdict.effective
            pvalue = verdict.omnibus_pvalue
            null_mean = verdict.null_mean
            action_mean = verdict.action_means[label]
        rolled_out = False
        if effective:
            rolled_out = self._roll_out(episode)
        improvement = (
            null_mean - action_mean
            if null_mean is not None and action_mean is not None else 0.0
        )
        episode.outcome = ActionOutcome(
            episode_id=episode.episode_id,
            category=episode.category.value,
            opened_day=episode.opened_day,
            evaluation_day=day,
            action=label,
            matched_incident=episode.matched_incident,
            rca_dimension=(episode.root_cause.dimension
                           if episode.root_cause else None),
            rca_values=(episode.root_cause.values
                        if episode.root_cause else ()),
            treated=len(episode.treated),
            control=len(episode.control),
            executed=episode.executed,
            discarded_conflict=episode.discarded_conflict,
            failed=episode.failed,
            effective=effective,
            omnibus_pvalue=pvalue,
            null_mean=null_mean,
            action_mean=action_mean,
            realized_improvement=improvement,
            rolled_out=rolled_out,
        )

    def _roll_out(self, episode: Episode) -> bool:
        """Apply the winning action to the null arm; True if any ran."""
        batch = [
            Action(type=episode.action_type, target=vm,
                   priority=ACTION_PRIORITY[episode.action_type],
                   source_rule=f"{episode.episode_id}/rollout")
            for vm in episode.control
        ]
        if not batch:
            return False
        executed = 0
        for record in self._platform.submit(batch):
            if record.status is ExecutionStatus.EXECUTED:
                executed += 1
                self._remediated.add(record.action.target)
        return executed > 0

    # -- scoring ---------------------------------------------------------------

    def _scorecard(self) -> Scorecard:
        """Score the finished run against the injected ground truth."""
        by_incident: dict[str, Episode] = {}
        for episode in self._episodes:
            incident_id = episode.matched_incident
            if incident_id is not None and incident_id not in by_incident:
                by_incident[incident_id] = episode
        incidents = []
        for incident in self._scenario.incidents:
            episode = by_incident.get(incident.incident_id)
            if episode is None:
                incidents.append(IncidentOutcome(
                    incident_id=incident.incident_id,
                    category=incident.category.value,
                    onset_day=incident.onset_day,
                    duration_days=incident.duration_days,
                    detected=False,
                ))
                continue
            cause = episode.root_cause
            rca_correct = (
                cause is not None
                and cause.dimension == incident.dimension
                and incident.value in cause.values
            )
            incidents.append(IncidentOutcome(
                incident_id=incident.incident_id,
                category=incident.category.value,
                onset_day=incident.onset_day,
                duration_days=incident.duration_days,
                detected=True,
                detected_day=episode.opened_day,
                latency_days=episode.opened_day - incident.onset_day,
                episode_id=episode.episode_id,
                rca_correct=rca_correct,
            ))
        actions = tuple(
            episode.outcome for episode in self._episodes
            if episode.outcome is not None
        )
        return Scorecard(
            scenario=self._scenario.name,
            seed=self._scenario.seed,
            days=self._scenario.days,
            incidents=tuple(incidents),
            actions=actions,
            suppressed_detections=self._suppressed,
        )

"""Seeded fleets with injected ground-truth incidents for the loop.

A :class:`ControlScenario` bundles everything the closed-loop
controller needs to replay a fleet's days deterministically: the
topology, the background fault mix, the injected incidents (the
ground truth the scorecard measures against), and the day count.

:func:`seeded_scenario` injects one incident per stability sub-metric
— an unavailability outage, a performance degradation, and a control-
plane outage — each concentrated on a single cluster, staggered so
every detection, action, and evaluation completes within the run.
:func:`quiet_scenario` is the same fleet with background faults only:
a correct controller must fire zero actions on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.faults import FaultKind, FaultRate
from repro.telemetry.fleetgen import InjectedIncident
from repro.telemetry.topology import Fleet, build_fleet

#: Hours of damage each incident inflicts per affected VM per day.
_INCIDENT_SECONDS_PER_DAY = 43200.0


@dataclass(frozen=True, slots=True)
class ControlScenario:
    """One deterministic closed-loop run specification.

    ``seed`` drives everything stochastic: the fleet layout, the
    per-day background fault draws, and the A/B arm assignment inside
    the controller.  Two runs of the same scenario are byte-identical.
    """

    name: str
    seed: int
    days: int
    fleet: Fleet
    rates: tuple[FaultRate, ...]
    incidents: tuple[InjectedIncident, ...] = ()
    day_seconds: float = 86400.0

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError(f"days must be >= 1, got {self.days}")
        if self.day_seconds <= 0:
            raise ValueError(
                f"day_seconds must be > 0, got {self.day_seconds}"
            )
        for incident in self.incidents:
            if incident.onset_day >= self.days:
                raise ValueError(
                    f"incident {incident.incident_id} starts on day "
                    f"{incident.onset_day}, beyond the {self.days}-day run"
                )
            if incident.seconds_per_day > self.day_seconds:
                raise ValueError(
                    f"incident {incident.incident_id} injects "
                    f"{incident.seconds_per_day}s/day into a "
                    f"{self.day_seconds}s day"
                )
            unknown = [t for t in incident.targets
                       if t not in self.fleet.vms]
            if unknown:
                raise ValueError(
                    f"incident {incident.incident_id} targets unknown "
                    f"VMs: {unknown[:3]}"
                )

    @property
    def vm_ids(self) -> list[str]:
        """All fleet VM ids, sorted (the canonical iteration order)."""
        return sorted(self.fleet.vms)


def _control_fleet(seed: int) -> Fleet:
    """The scenario fleet: 2 regions × 2 clusters × 2 NCs × 4 VMs.

    32 VMs across 4 clusters of 8.  A single machine model keeps the
    ``machine_model`` dimension uninformative, so cluster-concentrated
    incidents have exactly one correct localization regardless of how
    the seed would have scattered models over NCs.
    """
    return build_fleet(
        seed=seed, regions=2, azs_per_region=1, clusters_per_az=2,
        ncs_per_cluster=2, vms_per_nc=4, machine_models=("M1",),
    )


def _background_rates() -> tuple[FaultRate, ...]:
    """Background fault mix keeping every sub-metric curve alive.

    Rates are high enough that each category sees multiple background
    faults per day fleet-wide (a flat curve would degenerate both the
    K-Sigma sigma and the EVT calibration) yet orders of magnitude
    below the injected incidents' damage.  Tight ``duration_sigma``
    keeps day-to-day variance low so consensus detection of background
    noise stays improbable.
    """
    return (
        FaultRate(FaultKind.VM_DOWN, 0.12, 120.0, 0.2),
        FaultRate(FaultKind.VM_HANG, 0.08, 100.0, 0.2),
        FaultRate(FaultKind.SLOW_IO, 0.40, 110.0, 0.2),
        FaultRate(FaultKind.PACKET_LOSS, 0.30, 90.0, 0.2),
        FaultRate(FaultKind.CONTROL_API_OUTAGE, 0.15, 100.0, 0.2),
        FaultRate(FaultKind.CONSOLE_OUTAGE, 0.10, 80.0, 0.2),
    )


def _cluster_vms(fleet: Fleet, cluster_id: str) -> tuple[str, ...]:
    """Sorted VM ids placed in one cluster."""
    return tuple(sorted(
        vm_id for vm_id in fleet.vms
        if fleet.cluster_of(vm_id).cluster_id == cluster_id
    ))


def seeded_scenario(seed: int = 0, *, days: int = 21) -> ControlScenario:
    """Three staggered single-cluster incidents, one per sub-metric.

    Onsets (days 12/14/16) sit beyond both the detector's rolling
    window and the EVT calibration prefix, and early enough that the
    last episode's observation window closes inside the run.  Each
    incident halts half of every affected VM's day, which dwarfs the
    background mix by two orders of magnitude — detection is expected
    on the onset day itself (latency 0).
    """
    if days < 20:
        raise ValueError(f"seeded scenario needs >= 20 days, got {days}")
    fleet = _control_fleet(seed)
    clusters = sorted(fleet.clusters)
    plan = (
        ("inc-performance", FaultKind.SLOW_IO, clusters[0], 12),
        ("inc-unavailability", FaultKind.VM_DOWN, clusters[1], 14),
        ("inc-control", FaultKind.CONTROL_API_OUTAGE, clusters[2], 16),
    )
    incidents = tuple(
        InjectedIncident(
            incident_id=incident_id,
            kind=kind,
            targets=_cluster_vms(fleet, cluster_id),
            onset_day=onset,
            duration_days=days - onset,
            seconds_per_day=_INCIDENT_SECONDS_PER_DAY,
            dimension="cluster",
            value=cluster_id,
        )
        for incident_id, kind, cluster_id, onset in plan
    )
    return ControlScenario(
        name="seeded", seed=seed, days=days, fleet=fleet,
        rates=_background_rates(), incidents=incidents,
    )


def quiet_scenario(seed: int = 0, *, days: int = 21) -> ControlScenario:
    """The same fleet and background mix with no injected incidents."""
    return ControlScenario(
        name="quiet", seed=seed, days=days, fleet=_control_fleet(seed),
        rates=_background_rates(),
    )

"""Closed-loop control: online detect → localize → act → evaluate.

The paper's workflows 3 and 4 (potential-problem detection, Section
VI-C; operation-action optimization, Section VI-D) are wired into one
continuous loop here: as days tick in, the consensus detectors run
over the daily CDI series, confirmed findings are localized across
the fleet topology, operation actions are A/B-assigned (always with a
null arm) and submitted through the Operation Platform, executed
actions feed back into subsequent telemetry, and every action is
scored by the existing omnibus + post-hoc ladder against the injected
ground truth.
"""

from repro.control.controller import (
    ClosedLoopController,
    ControllerConfig,
    Episode,
)
from repro.control.scenario import (
    ControlScenario,
    quiet_scenario,
    seeded_scenario,
)
from repro.control.scorecard import (
    ActionOutcome,
    IncidentOutcome,
    Scorecard,
    scorecard_json,
)

__all__ = [
    "ActionOutcome",
    "ClosedLoopController",
    "ControlScenario",
    "ControllerConfig",
    "Episode",
    "IncidentOutcome",
    "Scorecard",
    "quiet_scenario",
    "scorecard_json",
    "seeded_scenario",
]

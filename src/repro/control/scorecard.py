"""Closed-loop scorecard: how well did detect → act → evaluate do?

The controller's run is scored against the scenario's injected ground
truth (:class:`repro.telemetry.fleetgen.InjectedIncident`):

* **detection** — recall (injected incidents detected), precision
  (confirmed episodes that match an incident), and latency in days
  from fault onset to the confirmed detection;
* **localization** — whether the root cause the RCA pass produced
  names the incident's ground-truth dimension value;
* **action** — for every episode, the A/B verdict of the submitted
  action against its null arm and the realized CDI improvement
  (null-arm mean minus action-arm mean on the episode's sub-metric).

Everything here is plain data: no timestamps, no backend identifiers,
no environment fingerprints.  A scorecard serialized with
:func:`scorecard_json` is therefore byte-identical across reruns and
across executor backends — the property the determinism tests and the
CI gate pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class IncidentOutcome:
    """Ground-truth view: what happened to one injected incident."""

    incident_id: str
    category: str
    onset_day: int
    duration_days: int
    detected: bool
    detected_day: int | None = None
    latency_days: int | None = None
    episode_id: str | None = None
    rca_correct: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "incident_id": self.incident_id,
            "category": self.category,
            "onset_day": self.onset_day,
            "duration_days": self.duration_days,
            "detected": self.detected,
            "detected_day": self.detected_day,
            "latency_days": self.latency_days,
            "episode_id": self.episode_id,
            "rca_correct": self.rca_correct,
        }


@dataclass(frozen=True, slots=True)
class ActionOutcome:
    """Operational view: what one confirmed episode's action achieved.

    ``realized_improvement`` is ``null_mean - action_mean`` on the
    episode's sub-metric over the observation window: positive means
    the action left treated VMs with less damage than doing nothing.
    """

    episode_id: str
    category: str
    opened_day: int
    evaluation_day: int
    action: str
    matched_incident: str | None
    rca_dimension: str | None
    rca_values: tuple[str, ...]
    treated: int
    control: int
    executed: int
    discarded_conflict: int
    failed: int
    effective: bool
    omnibus_pvalue: float | None
    null_mean: float | None
    action_mean: float | None
    realized_improvement: float
    rolled_out: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "episode_id": self.episode_id,
            "category": self.category,
            "opened_day": self.opened_day,
            "evaluation_day": self.evaluation_day,
            "action": self.action,
            "matched_incident": self.matched_incident,
            "rca_dimension": self.rca_dimension,
            "rca_values": list(self.rca_values),
            "treated": self.treated,
            "control": self.control,
            "executed": self.executed,
            "discarded_conflict": self.discarded_conflict,
            "failed": self.failed,
            "effective": self.effective,
            "omnibus_pvalue": self.omnibus_pvalue,
            "null_mean": self.null_mean,
            "action_mean": self.action_mean,
            "realized_improvement": self.realized_improvement,
            "rolled_out": self.rolled_out,
        }


@dataclass(frozen=True, slots=True)
class Scorecard:
    """Full closed-loop run summary (ground truth vs controller)."""

    scenario: str
    seed: int
    days: int
    incidents: tuple[IncidentOutcome, ...]
    actions: tuple[ActionOutcome, ...]
    suppressed_detections: int

    @property
    def true_positives(self) -> int:
        """Episodes whose detection matches an injected incident."""
        return sum(1 for a in self.actions if a.matched_incident is not None)

    @property
    def false_positives(self) -> int:
        """Episodes confirmed where no injected incident was active."""
        return sum(1 for a in self.actions if a.matched_incident is None)

    @property
    def precision(self) -> float:
        """TP / confirmed episodes; vacuously 1.0 with no episodes."""
        if not self.actions:
            return 1.0
        return self.true_positives / len(self.actions)

    @property
    def recall(self) -> float:
        """Detected incidents / injected; vacuously 1.0 with none."""
        if not self.incidents:
            return 1.0
        detected = sum(1 for i in self.incidents if i.detected)
        return detected / len(self.incidents)

    @property
    def mean_latency_days(self) -> float | None:
        """Mean onset-to-detection latency over detected incidents."""
        latencies = [i.latency_days for i in self.incidents
                     if i.latency_days is not None]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def rca_accuracy(self) -> float | None:
        """Share of detected incidents localized to the right value."""
        verdicts = [i.rca_correct for i in self.incidents if i.detected]
        if not verdicts:
            return None
        return sum(1 for v in verdicts if v) / len(verdicts)

    @property
    def realized_improvement_total(self) -> float:
        """Summed null-minus-action CDI improvement over all episodes."""
        return sum(a.realized_improvement for a in self.actions)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation, derived metrics included."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "days": self.days,
            "incidents": [i.to_dict() for i in self.incidents],
            "actions": [a.to_dict() for a in self.actions],
            "suppressed_detections": self.suppressed_detections,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "precision": self.precision,
            "recall": self.recall,
            "mean_latency_days": self.mean_latency_days,
            "rca_accuracy": self.rca_accuracy,
            "realized_improvement_total": self.realized_improvement_total,
        }


def scorecard_json(scorecard: Scorecard) -> str:
    """Canonical serialization: sorted keys, stable float repr.

    The byte-determinism contract (reruns and backends produce the
    identical file) hangs on this being a pure function of the
    scorecard's values.
    """
    return json.dumps(scorecard.to_dict(), indent=2, sort_keys=True) + "\n"

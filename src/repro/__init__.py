"""repro — reproduction of "Stability is Not Downtime" (ICDE 2025).

This package implements the Comprehensive Damage Indicator (CDI) for
large-scale cloud server stability evaluation, together with every
substrate the paper depends on:

* :mod:`repro.core` — CDI: events, periods, AHP weights, Algorithm 1,
  Formula 4, baseline metrics (Downtime Percentage, AIR, MTBF/MTTR).
* :mod:`repro.engine` — a miniature DAG-scheduled dataset engine
  standing in for Apache Spark.
* :mod:`repro.storage` — log store (SLS), table store (MaxCompute),
  and config DB (MySQL) stand-ins.
* :mod:`repro.telemetry` — deterministic cloud-fleet simulator with
  fault injection (topology, metrics, logs, tickets).
* :mod:`repro.cloudbot` — the AIOps pipeline: collector, event
  extractor, rule engine, operation platform, alerting, predictor.
* :mod:`repro.analytics` — K-Sigma, EVT (POT/SPOT), STL decomposition,
  spike/dip detection, root-cause localization.
* :mod:`repro.stats` — the Fig. 10 hypothesis-test ladder (omnibus +
  post-hoc tests).
* :mod:`repro.abtest` — A/B testing of operation actions on CDI.
* :mod:`repro.pipeline` — the daily CDI job and BI-style drill-downs.
* :mod:`repro.scenarios` — reusable incident/case scenario builders.

Quickstart::

    from repro.core import (
        CdiCalculator, EventPeriod, ServicePeriod, Severity,
        default_catalog, expert_only_config,
    )

    calc = CdiCalculator(default_catalog(), expert_only_config())
    periods = [EventPeriod("slow_io", "vm-1", 480.0, 600.0, Severity.CRITICAL)]
    report = calc.vm_report(periods, ServicePeriod(0.0, 3600.0))
    print(report.performance)
"""

__version__ = "1.0.0"

"""Command-line interface: regenerate the paper's figures and tables.

Usage::

    python -m repro list
    python -m repro fig5
    python -m repro fig6 --seed 3
    python -m repro all

Each subcommand rebuilds one experiment from scratch (deterministic
for a given ``--seed``) and prints the corresponding rows/series.  The
benchmark harness (`pytest benchmarks/ --benchmark-only -s`) runs the
same reproductions with timing and shape assertions.
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence


def _print_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def cmd_fig2(seed: int) -> None:
    """Fig. 2: ticket distribution."""
    from repro.core.events import EventCategory
    from repro.telemetry.tickets import PAPER_TICKET_MIXTURE, TicketGenerator
    from repro.tickets.classifier import train_default_classifier

    tickets = TicketGenerator(seed=seed or 20230101).generate(
        6000, targets=["fleet"]
    )
    classifier = train_default_classifier(seed=7)
    predictions = classifier.predict([t.text for t in tickets])
    rows = [
        (c.value, f"{PAPER_TICKET_MIXTURE[c]:.0%}",
         f"{sum(1 for p in predictions if p is c) / len(predictions):.1%}")
        for c in EventCategory
    ]
    _print_table("Fig. 2: ticket distribution (paper vs reproduced)",
                 ["category", "paper", "reproduced"], rows)


def cmd_table4(seed: int) -> None:
    """Table IV: the worked CDI example."""
    from repro.core.indicator import ServicePeriod, WeightedInterval, aggregate, cdi

    def minutes(h: int, m: int) -> float:
        return h * 60.0 + m

    cases = {
        1: ([WeightedInterval(minutes(10, 8), minutes(10, 10), 0.3),
             WeightedInterval(minutes(10, 10), minutes(10, 12), 0.3)],
            ServicePeriod(minutes(10, 0), minutes(11, 0)), "0.020"),
        2: ([WeightedInterval(minutes(13, 25), minutes(13, 30), 0.6)],
            ServicePeriod(0.0, 1440.0), "0.002"),
        3: ([WeightedInterval(minutes(8, 8), minutes(8, 10), 0.5),
             WeightedInterval(minutes(8, 10), minutes(8, 12), 0.5),
             WeightedInterval(minutes(8, 10), minutes(8, 15), 0.6)],
            ServicePeriod(0.0, 1000.0), "0.004"),
    }
    rows = []
    per_vm = []
    for vm, (intervals, service, paper) in cases.items():
        value = cdi(intervals, service)
        per_vm.append((service.duration, value))
        rows.append((vm, paper, f"{value:.3f}"))
    rows.append(("All", "0.003", f"{aggregate(per_vm):.3f}"))
    _print_table("Table IV: worked CDI example",
                 ["VM", "paper CDI", "reproduced CDI"], rows)


def cmd_fig5(seed: int) -> None:
    """Fig. 5: incidents vs AIR/DP."""
    from repro.scenarios.incidents import (
        normalize_to_daily,
        simulate_incident_days,
    )

    rows_by_day = normalize_to_daily(simulate_incident_days(seed=seed))
    metrics = ("CDI-U", "CDI-P", "CDI-C", "AIR", "DP")
    rows = [
        [day] + [f"{rows_by_day[day][m]:.2f}" for m in metrics]
        for day in ("daily", "20240425", "20240702", "20250107")
    ]
    _print_table("Fig. 5: normalized metrics per incident day",
                 ["day", *metrics], rows)


def cmd_fig6(seed: int) -> None:
    """Fig. 6: FY2024 trend."""
    from repro.core.events import EventCategory
    from repro.scenarios.fiscal_year import (
        simulate_fiscal_year,
        smoothed,
        year_over_year_reduction,
    )

    curve = simulate_fiscal_year(seed=seed)
    smooth = smoothed(curve)
    rows = [
        (m.month, f"{m.report.unavailability:.5f}",
         f"{m.report.performance:.5f}", f"{m.report.control_plane:.5f}")
        for m in smooth
    ]
    _print_table("Fig. 6: smoothed monthly CDI",
                 ["month", "CDI-U", "CDI-P", "CDI-C"], rows)
    reductions = year_over_year_reduction(curve)
    paper = {"unavailability": "40%", "performance": "80%",
             "control_plane": "35%"}
    _print_table("Fig. 6: year-over-year reduction",
                 ["sub-metric", "paper", "reproduced"],
                 [(c.value, paper[c.value], f"{reductions[c]:.0%}")
                  for c in EventCategory])


def cmd_fig8(seed: int) -> None:
    """Fig. 8: architecture comparison."""
    from repro.scenarios.architecture import (
        divergence_ratio,
        simulate_architecture_comparison,
    )

    curve = simulate_architecture_comparison(seed=seed)
    rows = [(d.day, f"{d.homogeneous:.5f}", f"{d.hybrid:.5f}")
            for d in curve]
    _print_table("Fig. 8: Performance Indicator per architecture",
                 ["day", "homogeneous", "hybrid"], rows)
    print(f"\nhybrid/homogeneous ratio: "
          f"pre {divergence_ratio(curve, (1, 12)):.2f}, "
          f"bug {divergence_ratio(curve, (14, 20)):.2f}, "
          f"rollback {divergence_ratio(curve, (27, 28)):.2f}")


def cmd_fig9(seed: int) -> None:
    """Fig. 9: event-level spike and dip."""
    from repro.analytics.detect import CdiCurveDetector
    from repro.scenarios.event_level import simulate_event_level_curves

    curves = simulate_event_level_curves(seed=seed)
    rows = [
        (i + 1, f"{a:.5f}", f"{b:.5f}")
        for i, (a, b) in enumerate(
            zip(curves.allocation_failed, curves.power_tdp)
        )
    ]
    _print_table("Fig. 9: event-level CDI curves",
                 ["day", "(a) vm_allocation_failed",
                  "(b) inspect_cpu_power_tdp"], rows)
    detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
    spikes = [d.index + 1 for d in detector.detect(curves.allocation_failed)
              if d.direction == "spike"]
    dips = [d.index + 1 for d in detector.detect(curves.power_tdp)
            if d.direction == "dip"]
    print(f"\nspike detections (a): {spikes}; dip detections (b): {dips}")


def cmd_table5(seed: int) -> None:
    """Table V + Fig. 11: the Case 8 A/B test."""
    from repro.abtest.analysis import analyze
    from repro.core.events import EventCategory
    from repro.scenarios.abtest_case8 import PAPER_MEANS, build_case8_experiment

    experiment = build_case8_experiment(hits_per_variant=450, seed=seed)
    analysis = analyze(experiment)
    rows = []
    for category in EventCategory:
        sub = analysis.by_category[category]
        pairs = ", ".join(
            f"{a}-{b}:{p.pvalue:.3f}{'*' if p.significant else ''}"
            for p in sub.workflow.pairs for a, b in [p.pair]
        ) or "-"
        rows.append((category.value, f"{sub.workflow.omnibus.pvalue:.2f}",
                     str(sub.significant), pairs))
    _print_table("Table V: hypothesis test results",
                 ["sub-metric", "omnibus p", "significant", "post-hoc"],
                 rows)
    perf = analysis.by_category[EventCategory.PERFORMANCE]
    _print_table("Fig. 11: Performance Indicator per action",
                 ["action", "paper mean", "reproduced mean"],
                 [(n, f"{PAPER_MEANS[n]:.2f}", f"{perf.means[n]:.2f}")
                  for n in ("A", "B", "C")])
    print(f"\nrecommended action: {analysis.recommendation}")


def cmd_daily(seed: int, *, days: int = 1, vms: int = 64,
              backend: str = "thread", max_retries: int = 2,
              checkpoint_dir: str | None = None, resume: bool = True,
              shards: int = 8, chaos_seed: int | None = None,
              trace_dir: str | None = None) -> None:
    """Fault-tolerant daily CDI job over a synthetic fleet."""
    from pathlib import Path

    from repro.core.events import Event, default_catalog
    from repro.core.indicator import ServicePeriod
    from repro.engine import (
        ChaosInjector,
        EngineContext,
        RunTrace,
        spark_like_policy,
    )
    from repro.pipeline.backfill import run_days
    from repro.pipeline.daily import DailyCdiJob
    from repro.scenarios.common import default_weights, fault_to_period
    from repro.storage.configdb import ConfigDB
    from repro.storage.table import TableStore
    from repro.telemetry.faults import FaultInjector, baseline_rates

    day_seconds = 86400.0
    catalog = default_catalog()
    vm_ids = [f"vm-{index:05d}" for index in range(vms)]
    services = {vm: ServicePeriod(0.0, day_seconds) for vm in vm_ids}

    def events_for_day(index: int, partition: str) -> list[Event]:
        injector = FaultInjector(baseline_rates(scale=20.0),
                                 seed=seed * 1000 + index)
        events = []
        for fault in injector.sample(vm_ids, 0.0, day_seconds):
            period = fault_to_period(fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=600.0, level=period.level,
                attributes={"duration": period.duration},
            ))
        return events

    chaos = None
    if chaos_seed is not None:
        chaos = ChaosInjector.storm(seed=chaos_seed)
    context = EngineContext(
        parallelism=4, backend=backend,
        retry_policy=spark_like_policy(max_retries, seed=seed),
        chaos=chaos,
    )
    job = DailyCdiJob(context, TableStore(), ConfigDB(), catalog)
    job.store_weights(default_weights())
    trace = RunTrace("daily") if trace_dir is not None else None
    backfill = run_days(
        job, events_for_day, services, days,
        checkpoint_dir=checkpoint_dir, resume=resume, shards=shards,
        trace=trace,
    )
    rows = [
        (result.partition, result.vm_count, result.event_count,
         f"{result.fleet_report.unavailability:.5f}",
         f"{result.fleet_report.performance:.5f}",
         f"{result.fleet_report.control_plane:.5f}")
        for result in backfill.job_results
    ]
    _print_table(
        f"Daily CDI job ({backend} backend"
        + (", chaos on" if chaos else "") + ")",
        ["day", "VMs", "events", "CDI-U", "CDI-P", "CDI-C"], rows,
    )
    metrics = context.executor.last_job_metrics
    print(f"\nlast stage: {len(metrics.tasks)} tasks, "
          f"{metrics.retry_attempts} retried attempts, "
          f"{metrics.failed_tasks} failed, "
          f"{metrics.timed_out_tasks} timed out")
    if checkpoint_dir is not None:
        print(f"checkpoints under {checkpoint_dir} "
              f"({'resume enabled' if resume else 'resume disabled'})")
    if trace is not None and trace_dir is not None:
        target = trace.write_jsonl(
            Path(trace_dir) / f"daily-seed{seed}.jsonl"
        )
        problems = trace.validate()
        print(f"\ntrace written to {target} "
              f"({'complete' if not problems else 'INCOMPLETE'})")
        for problem in problems:
            print(f"  trace problem: {problem}")
        print(trace.summary())


def _build_query_service(seed: int, days: int, vms: int, *,
                         shards: int = 1,
                         parallelism: "int | None" = None):
    """Synthetic fleet + daily-job backfill → a ready QueryService.

    The dataset behind ``repro query``/``repro serve``: a topology-
    aware fleet (so group-by queries have dimensions to slice),
    deterministic per-day fault events, and the daily CDI job run over
    every partition.  ``shards`` > 1 splits the rollup store so
    multi-day queries merge shard results in parallel.
    """
    from repro.core.events import Event, default_catalog
    from repro.core.indicator import ServicePeriod
    from repro.engine.dataset import EngineContext
    from repro.pipeline.backfill import run_days
    from repro.pipeline.daily import DailyCdiJob
    from repro.scenarios.common import default_weights, fault_to_period
    from repro.serving import QueryService
    from repro.storage.configdb import ConfigDB
    from repro.storage.table import TableStore
    from repro.telemetry.faults import FaultInjector, baseline_rates
    from repro.telemetry.topology import build_fleet

    day_seconds = 86400.0
    catalog = default_catalog()
    fleet = build_fleet(
        seed=seed, regions=2, azs_per_region=2, clusters_per_az=1,
        ncs_per_cluster=2, vms_per_nc=max(1, vms // 8),
    )
    vm_ids = sorted(fleet.vms)
    services = {vm: ServicePeriod(0.0, day_seconds) for vm in vm_ids}

    def events_for_day(index: int, partition: str) -> list[Event]:
        injector = FaultInjector(baseline_rates(scale=20.0),
                                 seed=seed * 1000 + index)
        events = []
        for fault in injector.sample(vm_ids, 0.0, day_seconds):
            period = fault_to_period(fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=600.0, level=period.level,
                attributes={"duration": period.duration},
            ))
        return events

    job = DailyCdiJob(EngineContext(parallelism=4), TableStore(),
                      ConfigDB(), catalog)
    job.store_weights(default_weights())
    run_days(job, events_for_day, services, days)
    return QueryService(job.tables, resolver=fleet.dimensions_of,
                        shards=shards, parallelism=parallelism)


def _query_payload(args) -> dict:
    """Assemble the wire query payload from parsed CLI arguments."""
    payload: dict = {"kind": args.kind}
    optional = {
        "day": args.day, "start": args.start, "end": args.end,
        "category": args.category, "dimension": args.dimension,
        "event": args.event, "vm": args.vm_id,
    }
    for field, value in optional.items():
        if value is not None:
            payload[field] = value
    if args.kind in ("top-vms", "top-events"):
        payload["k"] = args.k
    return payload


def cmd_query(seed: int, *, days: int = 2, vms: int = 16,
              kind: str = "fleet", day: str | None = None,
              start: str | None = None, end: str | None = None,
              category: str | None = None, dimension: str | None = None,
              k: int = 5, event: str | None = None,
              vm_id: str | None = None) -> int:
    """One CDI query over a synthetic fleet, answered as JSON."""
    import json
    import sys
    from types import SimpleNamespace

    from repro.serving import run_query

    service = _build_query_service(seed, days, vms)
    if day is None and kind in ("fleet", "group-by", "top-vms",
                                "top-events", "vm"):
        day = service.days()[-1] if service.days() else None
    if kind == "group-by" and dimension is None:
        dimension = "region"
    if kind in ("trend", "top-vms") and category is None:
        category = "performance"
    if kind == "event-series" and event is None:
        leaders = service.top_events(day or service.days()[-1], 1)
        event = leaders[0][0] if leaders else "vm_down"
    args = SimpleNamespace(kind=kind, day=day, start=start, end=end,
                           category=category, dimension=dimension, k=k,
                           event=event, vm_id=vm_id)
    response = run_query(service, _query_payload(args))
    print(json.dumps(response, indent=2, sort_keys=True))
    stats = service.cache_stats
    print(f"cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.size} entries)", file=sys.stderr)
    return 0 if response.get("ok") else 1


def _parse_listen(listen: str) -> tuple[str, int]:
    """``HOST:PORT`` / ``:PORT`` → ``(host, port)`` (host defaults local)."""
    host, sep, port = listen.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(
            f"--listen expects HOST:PORT or :PORT, got {listen!r}"
        )
    return host or "127.0.0.1", int(port)


def cmd_serve(seed: int, *, days: int = 2, vms: int = 16,
              listen: str | None = None, serve_shards: int = 4,
              max_in_flight: int = 64,
              rate_limit: float | None = None) -> None:
    """Query server: JSON lines over stdin/stdout, or TCP via --listen."""
    import asyncio
    import json
    import sys

    from repro.serving import (
        QUERY_KINDS,
        AdmissionController,
        QueryServer,
        serve_lines,
    )

    service = _build_query_service(seed, days, vms, shards=serve_shards)
    admission = AdmissionController(max_in_flight=max_in_flight,
                                    rate_per_client=rate_limit)
    if listen is not None:
        host, port = _parse_listen(listen)
        server = QueryServer(service, host=host, port=port,
                             admission=admission)

        async def _run() -> None:
            bound_host, bound_port = await server.start()
            print(
                f"repro serve: listening on {bound_host}:{bound_port} "
                f"({len(service.days())} days, {service.shard_count} "
                f"shards); one JSON query per line",
                file=sys.stderr,
            )
            await server.serve_forever()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            print("repro serve: interrupted", file=sys.stderr)
        finally:
            service.close()
        return
    print(
        f"repro serve: {len(service.days())} days "
        f"({', '.join(service.days())}), kinds: "
        f"{', '.join(sorted(QUERY_KINDS))}; one JSON query per line",
        file=sys.stderr,
    )
    answered = serve_lines(service, sys.stdin, print,
                           admission=admission)
    stats = service.cache_stats
    print(
        f"served {answered} queries; cache {stats.hits} hits / "
        f"{stats.misses} misses "
        f"({json.dumps(stats.hit_rate)} hit rate)",
        file=sys.stderr,
    )
    service.close()


def cmd_stream(seed: int, *, vms: int = 32, ticks: int = 6,
               lateness: float = 1800.0,
               checkpoint_dir: str | None = None) -> int:
    """Streaming incremental CDI with a live batch differential check."""
    import json
    import random
    from pathlib import Path

    from repro.core.events import Event, default_catalog
    from repro.core.indicator import ServicePeriod
    from repro.engine.dataset import EngineContext
    from repro.pipeline.daily import WEIGHTS_CONFIG_KEY, DailyCdiJob
    from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE
    from repro.scenarios.common import default_weights, fault_to_period
    from repro.storage.configdb import ConfigDB
    from repro.storage.logstore import LogStore
    from repro.storage.table import TableStore
    from repro.streaming import (
        StreamCheckpoint,
        StreamingCdiPipeline,
        event_record,
    )
    from repro.telemetry.faults import FaultInjector, baseline_rates

    day_seconds = 86400.0
    partition = "day00"
    catalog = default_catalog()
    vm_ids = [f"vm-{index:05d}" for index in range(vms)]
    services = {vm: ServicePeriod(0.0, day_seconds) for vm in vm_ids}

    # One synthetic fleet day, then a bounded-lag shuffle: each record
    # arrives with a lag strictly below the allowed lateness, so the
    # tailer's watermark never drops one and the stream must reproduce
    # the batch answer over the whole day, byte for byte.
    injector = FaultInjector(baseline_rates(scale=20.0), seed=seed * 1000)
    events = []
    for fault in injector.sample(vm_ids, 0.0, day_seconds):
        period = fault_to_period(fault, catalog)
        events.append(Event(
            name=period.name, time=period.end, target=period.target,
            expire_interval=600.0, level=period.level,
            attributes={"duration": period.duration},
        ))
    rng = random.Random(seed)
    lags = [rng.uniform(0.0, 0.9 * lateness) for _ in events]
    order = sorted(range(len(events)),
                   key=lambda i: (events[i].time + lags[i], i))
    arrival = [events[i] for i in order]

    config = ConfigDB()
    config.put(WEIGHTS_CONFIG_KEY, default_weights().to_dict())
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = StreamCheckpoint(
            Path(checkpoint_dir) / f"stream-seed{seed}.ck"
        )
    store = LogStore()
    tables = TableStore()
    pipeline = StreamingCdiPipeline(
        store, tables, config, catalog, services, partition,
        allowed_lateness=lateness, checkpoint=checkpoint,
    )
    if pipeline.resume():
        print(f"resumed from checkpoint at tick {pipeline.ticks} "
              f"(cursor {pipeline.tailer.cursor})")

    ticks = max(1, ticks)
    size = max(1, (len(arrival) + ticks - 1) // ticks)
    rows = []
    for offset in range(0, len(arrival), size):
        for event in arrival[offset:offset + size]:
            store.append(event.time, **event_record(event))
        result = pipeline.tick()
        rows.append(result)
    rows.append(pipeline.flush())
    _print_table(
        f"Streaming CDI ({vms} VMs, lateness {lateness:g}s"
        + (", checkpointed" if checkpoint else "") + ")",
        ["tick", "released", "applied", "buffered", "late_dropped",
         "watermark", "CDI-U", "CDI-P"],
        [
            (r.tick, r.released, r.applied, r.buffered, r.late_dropped,
             "-" if r.watermark is None else f"{r.watermark:.0f}",
             f"{r.fleet_report.unavailability:.5f}",
             f"{r.fleet_report.performance:.5f}")
            for r in rows
        ],
    )

    # The differential gate, live: a from-scratch batch job over the
    # admitted events (in the tailer's release order) must publish the
    # exact same bytes the stream just did.
    oracle_events = [
        event for _, event in sorted(
            enumerate(arrival), key=lambda pair: (pair[1].time, pair[0])
        )
    ]
    oracle = DailyCdiJob(EngineContext(parallelism=4), TableStore(),
                         ConfigDB(), catalog)
    oracle.store_weights(default_weights())
    oracle.ingest_events(oracle_events, partition)
    oracle.run(partition, services)

    def table_bytes(source: TableStore) -> bytes:
        return json.dumps([
            source.get(VM_CDI_TABLE).rows(partition=partition),
            source.get(EVENT_CDI_TABLE).rows(partition=partition),
        ], sort_keys=True).encode()

    streamed, batch = table_bytes(tables), table_bytes(oracle.tables)
    verdict = "IDENTICAL" if streamed == batch else "DIVERGED"
    print(f"\ndifferential vs batch recompute: {verdict} "
          f"({pipeline.tailer.consumed} consumed, "
          f"{pipeline.tailer.late_dropped} dropped, "
          f"{pipeline.state.applied} applied)")
    return 0 if streamed == batch else 1


def cmd_control(seed: int, *, days: int = 21, backend: str = "thread",
                scenario: str = "seeded",
                json_out: str | None = None) -> int:
    """Closed-loop controller: detect, localize, act, evaluate."""
    from pathlib import Path

    from repro.control import (
        ClosedLoopController,
        quiet_scenario,
        scorecard_json,
        seeded_scenario,
    )
    from repro.engine.dataset import EngineContext

    builders = {"seeded": seeded_scenario, "quiet": quiet_scenario}
    spec = builders[scenario](seed, days=days)
    controller = ClosedLoopController(
        spec, context=EngineContext(parallelism=2, backend=backend)
    )
    card = controller.run()
    if spec.incidents:
        _print_table(
            "Closed loop: injected incidents vs detection",
            ["incident", "category", "onset", "detected", "latency",
             "RCA correct"],
            [
                (i.incident_id, i.category, i.onset_day,
                 "yes" if i.detected else "NO",
                 "-" if i.latency_days is None else i.latency_days,
                 "-" if i.rca_correct is None else str(i.rca_correct))
                for i in card.incidents
            ],
        )
    _print_table(
        "Closed loop: episodes and action verdicts",
        ["episode", "category", "day", "action", "arms", "effective",
         "improvement", "rolled out"],
        [
            (a.episode_id, a.category, a.opened_day, a.action,
             f"{a.treated}/{a.control}", str(a.effective),
             f"{a.realized_improvement:.5f}", str(a.rolled_out))
            for a in card.actions
        ],
    )
    print(f"\nprecision {card.precision:.2f}, recall {card.recall:.2f}, "
          f"false positives {card.false_positives}, "
          f"mean latency "
          + ("-" if card.mean_latency_days is None
             else f"{card.mean_latency_days:.1f}d")
          + ", RCA accuracy "
          + ("-" if card.rca_accuracy is None
             else f"{card.rca_accuracy:.2f}")
          + f", total CDI improvement "
            f"{card.realized_improvement_total:.5f}")
    if json_out is not None:
        target = Path(json_out)
        target.write_text(scorecard_json(card))
        print(f"scorecard written to {target}")
    return 0


def cmd_faceoff(seed: int, *, backend: str = "thread",
                json_out: str | None = None) -> int:
    """AIR-vs-CDI head-to-head over the outage scenario family."""
    from pathlib import Path

    from repro.scenarios.faceoff import faceoff_json, run_faceoff

    result = run_faceoff(seed, backend=backend)
    _print_table(
        "KPI faceoff: AIR vs CDI over the outage family "
        f"(seed {seed}, ratio vs {result['flag_ratio']}x baseline)",
        ["scenario", "AIR ratio", "CDI-U", "CDI-P", "CDI-C",
         "verdict", "RCA"],
        [
            (
                r["name"],
                f"{r['kpis']['air']['ratio']:.2f}"
                + ("*" if r["kpis"]["air"]["flagged"] else ""),
                *(
                    f"{r['kpis'][key]['ratio']:.2f}"
                    + ("*" if r["kpis"][key]["flagged"] else "")
                    for key in ("cdi_unavailability", "cdi_performance",
                                "cdi_control_plane")
                ),
                r["verdict"],
                ("-" if not r["rca"]["scored"]
                 else "correct" if r["rca"]["correct"] else "WRONG"),
            )
            for r in result["scenarios"]
        ],
    )
    summary = result["summary"]
    rca = summary["rca"]
    print(f"\n* = flagged (>= {result['flag_ratio']}x baseline). "
          f"AIR-blind scenarios: "
          f"{', '.join(summary['air_blind_scenarios']) or 'none'}; "
          f"CDI-blind: "
          f"{', '.join(summary['cdi_blind_scenarios']) or 'none'}. "
          f"RCA cluster localization {rca['correct']}/{rca['scored']} "
          f"(accuracy {rca['accuracy']:.2f}). "
          f"Expectations met: {summary['expectations_met']}.")
    if json_out is not None:
        target = Path(json_out)
        target.write_text(faceoff_json(result))
        print(f"faceoff artifact written to {target}")
    return 0 if summary["expectations_met"] else 1


def _newest_trace(trace_dir: str) -> "str | None":
    from pathlib import Path

    candidates = sorted(
        Path(trace_dir).glob("*.jsonl"),
        key=lambda p: p.stat().st_mtime,
    )
    return str(candidates[-1]) if candidates else None


def cmd_trace(seed: int, *, trace_file: str | None = None,
              trace_dir: str | None = None) -> None:
    """Summarize a run trace written by `daily --trace-dir`."""
    from repro.engine import RunTrace

    path = trace_file
    if path is None and trace_dir is not None:
        path = _newest_trace(trace_dir)
    if path is None:
        print("no trace file given; run `repro daily --trace-dir DIR` "
              "first, then `repro trace --trace-dir DIR` (or "
              "--trace-file FILE)")
        return
    trace = RunTrace.load(path)
    problems = trace.validate()
    print(f"trace file: {path} "
          f"({'complete' if not problems else 'INCOMPLETE'})")
    for problem in problems:
        print(f"  trace problem: {problem}")
    print(trace.summary())


COMMANDS: dict[str, Callable[[int], None]] = {
    "fig2": cmd_fig2,
    "table4": cmd_table4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "table5": cmd_table5,
    "daily": cmd_daily,
    "control": cmd_control,
    "faceoff": cmd_faceoff,
    "stream": cmd_stream,
    "trace": cmd_trace,
    "query": cmd_query,
    "serve": cmd_serve,
}

#: Commands skipped by ``repro all`` (interactive: blocks on stdin).
_INTERACTIVE_COMMANDS = frozenset({"serve"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("command",
                        choices=[*COMMANDS, "all", "list"],
                        help="which artifact to regenerate")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    daily = parser.add_argument_group(
        "daily", "options for the fault-tolerant daily job"
    )
    daily.add_argument("--days", type=int, default=None,
                       help="number of day partitions to run "
                            "(default 1; 21 for control)")
    daily.add_argument("--vms", type=int, default=64,
                       help="synthetic fleet size (default 64)")
    daily.add_argument("--backend", choices=["thread", "process"],
                       default="thread",
                       help="executor backend (default thread)")
    daily.add_argument("--max-retries", type=int, default=2,
                       help="per-task retry budget (default 2)")
    daily.add_argument("--checkpoint-dir", default=None,
                       help="directory for per-day checkpoint files "
                            "(enables checkpoint/resume)")
    daily.add_argument("--resume", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="resume from existing checkpoints "
                            "(default on; --no-resume starts over)")
    daily.add_argument("--shards", type=int, default=8,
                       help="VM shards per checkpointed day (default 8)")
    daily.add_argument("--chaos-seed", type=int, default=None,
                       help="enable deterministic chaos injection "
                            "with this seed")
    daily.add_argument("--trace-dir", default=None,
                       help="write a JSONL run trace into this directory "
                            "and print its summary")
    control = parser.add_argument_group(
        "control", "options for the closed-loop controller"
    )
    control.add_argument("--scenario", choices=["seeded", "quiet"],
                         default="seeded",
                         help="seeded (three injected incidents) or "
                              "quiet (background only; default seeded)")
    control.add_argument("--json-out", default=None,
                         help="write the scorecard (control) or faceoff "
                              "artifact JSON to this path")
    stream = parser.add_argument_group(
        "stream", "options for the streaming incremental CDI loop"
    )
    stream.add_argument("--ticks", type=int, default=6,
                        help="number of streaming tick batches "
                             "(default 6)")
    stream.add_argument("--lateness", type=float, default=1800.0,
                        help="allowed out-of-order lateness in seconds "
                             "(default 1800)")
    trace = parser.add_argument_group(
        "trace", "options for summarizing run traces"
    )
    trace.add_argument("--trace-file", default=None,
                       help="trace JSONL file to summarize")
    query = parser.add_argument_group(
        "query/serve", "options for the CDI query service"
    )
    query.add_argument("--kind", default="fleet",
                       choices=["fleet", "range", "trend", "group-by",
                                "top-vms", "top-events", "event-series",
                                "vm"],
                       help="query kind (default fleet)")
    query.add_argument("--day", default=None,
                       help="day partition, e.g. day00 (default: latest)")
    query.add_argument("--start", default=None,
                       help="range start day (inclusive)")
    query.add_argument("--end", default=None,
                       help="range end day (inclusive)")
    query.add_argument("--category", default=None,
                       help="sub-metric: unavailability / performance / "
                            "control_plane")
    query.add_argument("--dimension", default=None,
                       help="group-by dimension, e.g. region / az / "
                            "cluster (default region)")
    query.add_argument("--k", type=int, default=5,
                       help="top-K size (default 5)")
    query.add_argument("--event", default=None,
                       help="event name for event-series queries")
    query.add_argument("--vm-id", default=None,
                       help="VM id for vm point lookups")
    query.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve over TCP instead of stdin/stdout "
                            "(e.g. 127.0.0.1:7077 or :0 for ephemeral)")
    query.add_argument("--serve-shards", type=int, default=4,
                       help="rollup-store shards for the query service "
                            "(default 4)")
    query.add_argument("--max-in-flight", type=int, default=64,
                       help="admission limit on concurrent queries "
                            "(default 64)")
    query.add_argument("--rate-limit", type=float, default=None,
                       help="per-client queries/second token-bucket rate "
                            "(default: unlimited)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, fn in COMMANDS.items():
            print(f"{name:8} {fn.__doc__.strip() if fn.__doc__ else ''}")
        return 0
    if args.command == "all":
        for name, fn in COMMANDS.items():
            if name not in _INTERACTIVE_COMMANDS:
                fn(args.seed)
        return 0
    if args.command == "control":
        return cmd_control(args.seed, days=args.days or 21,
                           backend=args.backend, scenario=args.scenario,
                           json_out=args.json_out)
    if args.command == "faceoff":
        return cmd_faceoff(args.seed, backend=args.backend,
                           json_out=args.json_out)
    if args.command == "daily":
        cmd_daily(
            args.seed, days=args.days or 1, vms=args.vms, backend=args.backend,
            max_retries=args.max_retries, checkpoint_dir=args.checkpoint_dir,
            resume=args.resume, shards=args.shards,
            chaos_seed=args.chaos_seed, trace_dir=args.trace_dir,
        )
        return 0
    if args.command == "stream":
        return cmd_stream(args.seed, vms=args.vms, ticks=args.ticks,
                          lateness=args.lateness,
                          checkpoint_dir=args.checkpoint_dir)
    if args.command == "trace":
        cmd_trace(args.seed, trace_file=args.trace_file,
                  trace_dir=args.trace_dir)
        return 0
    if args.command == "query":
        return cmd_query(
            args.seed, days=args.days or 1, vms=args.vms, kind=args.kind,
            day=args.day, start=args.start, end=args.end,
            category=args.category, dimension=args.dimension, k=args.k,
            event=args.event, vm_id=args.vm_id,
        )
    if args.command == "serve":
        cmd_serve(args.seed, days=args.days or 1, vms=args.vms,
                  listen=args.listen, serve_shards=args.serve_shards,
                  max_in_flight=args.max_in_flight,
                  rate_limit=args.rate_limit)
        return 0
    COMMANDS[args.command](args.seed)
    return 0

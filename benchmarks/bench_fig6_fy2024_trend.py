"""Fig. 6 — overall CDI from April 2023 to March 2024 (FY2024).

Paper: over FY2024 the Unavailability, Performance and Control-Plane
Indicators fell by roughly 40%, 80% and 35% respectively, with
Performance dropping the most because its governance work was
early-stage.  We simulate the year with per-category improvement
schedules and report the smoothed monthly curves plus the
year-over-year reductions.
"""

from conftest import print_series, print_table, run_once

from repro.core.events import EventCategory
from repro.scenarios.fiscal_year import (
    simulate_fiscal_year,
    smoothed,
    year_over_year_reduction,
)

PAPER_REDUCTIONS = {
    EventCategory.UNAVAILABILITY: 0.40,
    EventCategory.PERFORMANCE: 0.80,
    EventCategory.CONTROL_PLANE: 0.35,
}


def reproduce_fig6():
    curve = simulate_fiscal_year(seed=0)
    return smoothed(curve, window=3), year_over_year_reduction(curve)


def test_fig6_fy2024_trend(benchmark):
    curve, reductions = run_once(benchmark, reproduce_fig6)
    print_series(
        "Fig. 6: smoothed monthly CDI (FY2024)",
        {
            "CDI-U": [m.report.unavailability for m in curve],
            "CDI-P": [m.report.performance for m in curve],
            "CDI-C": [m.report.control_plane for m in curve],
        },
        index_name="month#",
    )
    print_table(
        "Fig. 6: year-over-year reduction (paper vs reproduced)",
        ["sub-metric", "paper", "reproduced"],
        [
            (c.value, f"{PAPER_REDUCTIONS[c]:.0%}", f"{reductions[c]:.0%}")
            for c in EventCategory
        ],
    )
    # Shape: all three improve; Performance improves the most.
    assert all(r > 0.1 for r in reductions.values())
    assert reductions[EventCategory.PERFORMANCE] == max(reductions.values())
    assert reductions[EventCategory.PERFORMANCE] > 0.55

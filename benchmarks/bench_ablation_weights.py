"""Ablation — weight perspectives: AHP fusion vs expert-only vs
customer-only (Section IV-C).

The paper fuses expert severity and customer ticket-rank weights via
AHP.  This ablation scores the three weighting schemes on how well the
resulting per-event weights rank events by their *true* customer
impact (a hidden ground truth the simulator knows), measured with
Spearman rank correlation.  Fusion should dominate either single
perspective when both views are partially informative.
"""

import numpy as np
from conftest import print_table, run_once
from scipy import stats

from repro.core.events import Severity
from repro.core.weights import (
    build_weight_config,
    customer_levels_from_ticket_counts,
    expert_level_weight,
)


def build_event_population(seed: int = 0, n: int = 40):
    """Events with hidden true impact; expert levels and ticket counts
    are both noisy views of it."""
    rng = np.random.default_rng(seed)
    names = [f"event_{i:02d}" for i in range(n)]
    true_impact = rng.uniform(0.0, 1.0, n)
    # Expert severity: quantized, noisy view of impact.
    expert_levels = np.clip(
        np.round(true_impact * 4 + rng.normal(0, 0.7, n) + 0.5), 1, 4
    ).astype(int)
    # Ticket counts: Poisson with rate proportional to impact.
    ticket_counts = rng.poisson(true_impact * 200 + 5)
    return names, true_impact, expert_levels, ticket_counts


def run_ablation():
    names, true_impact, expert_levels, ticket_counts = build_event_population()
    counts = dict(zip(names, (int(c) for c in ticket_counts)))
    config = build_weight_config(counts, customer_levels=4)
    customer_levels = customer_levels_from_ticket_counts(counts, 4)

    weights = {"expert_only": [], "customer_only": [], "ahp_fusion": []}
    for i, name in enumerate(names):
        severity = Severity(expert_levels[i])
        expert = expert_level_weight(severity.rank, 4)
        customer = customer_levels[name] / 4
        weights["expert_only"].append(expert)
        weights["customer_only"].append(customer)
        weights["ahp_fusion"].append(
            config.resolve(name, severity)
        )
    return {
        scheme: float(stats.spearmanr(true_impact, values).statistic)
        for scheme, values in weights.items()
    }


def test_ablation_weight_perspectives(benchmark):
    correlations = run_once(benchmark, run_ablation)
    print_table(
        "Ablation: Spearman(true impact, weight) per weighting scheme",
        ["scheme", "rank correlation"],
        [(k, f"{v:.3f}") for k, v in correlations.items()],
    )
    # Both single perspectives are informative; fusion is at least as
    # good as the weaker one and close to (or better than) the best.
    assert correlations["expert_only"] > 0.3
    assert correlations["customer_only"] > 0.3
    best_single = max(correlations["expert_only"],
                      correlations["customer_only"])
    assert correlations["ahp_fusion"] >= best_single - 0.05

"""Fig. 10 — the hypothesis-test selection workflow.

The workflow routes groups to one-way ANOVA / Welch's ANOVA /
Kruskal-Wallis and the matching post-hoc test depending on normality
and variance homogeneity.  This benchmark drives synthetic group sets
engineered to hit every branch and reports which tests were selected,
validating the full ladder.
"""

import numpy as np
from conftest import print_table, run_once

from repro.stats.workflow import HypothesisTestWorkflow


def build_branch_inputs():
    rng = np.random.default_rng(42)
    return {
        "normal+homoscedastic": {
            f"g{i}": rng.normal(i * 1.5, 1.0, 80) for i in range(3)
        },
        "normal+heteroscedastic": {
            "g0": rng.normal(0.0, 0.2, 120),
            "g1": rng.normal(2.0, 3.0, 120),
            "g2": rng.normal(0.0, 0.2, 120),
        },
        "non-normal": {
            "g0": rng.exponential(1.0, 100),
            "g1": rng.exponential(1.0, 100) + 2.0,
            "g2": rng.exponential(1.0, 100),
        },
    }


EXPECTED = {
    "normal+homoscedastic": ("one_way_anova", "tukey_hsd"),
    "normal+heteroscedastic": ("welch_anova", "games_howell"),
    "non-normal": ("kruskal_wallis", "dunn"),
}


def run_all_branches():
    workflow = HypothesisTestWorkflow()
    return {
        name: workflow.run(groups)
        for name, groups in build_branch_inputs().items()
    }


def test_fig10_test_workflow(benchmark):
    results = run_once(benchmark, run_all_branches)
    rows = []
    for name, result in results.items():
        expected_omnibus, expected_posthoc = EXPECTED[name]
        rows.append((
            name, result.omnibus.test, result.posthoc_test or "-",
            f"{result.omnibus.pvalue:.2e}",
        ))
        assert result.omnibus.test == expected_omnibus, name
        assert result.posthoc_test == expected_posthoc, name
        assert result.omnibus_significant, name
        assert result.significant_pairs, name
    print_table(
        "Fig. 10: branch selection of the hypothesis-test workflow",
        ["input shape", "omnibus", "post-hoc", "omnibus p"], rows,
    )

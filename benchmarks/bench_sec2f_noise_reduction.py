"""Section II-F1 — operation-noise reduction.

The paper reduces operation noise by (a) combining events with product
configuration ("CPU contention on a shared VM is consistent with the
product definition and needs no actions") and (b) trend analysis of
event volumes.  This benchmark quantifies both on a hybrid fleet:

* how many raw vcpu_high events the product suppressor drops,
* how many steady-state events the trend suppressor absorbs while a
  genuine surge still gets through.
"""

from conftest import print_table, run_once

from repro.cloudbot.noise import (
    ProductSuppressor,
    TrendSuppressor,
    shared_vm_contention_rule,
)
from repro.core.events import Event, Severity
from repro.telemetry.topology import DeploymentArch, VmType, build_fleet


def reproduce_noise_reduction():
    fleet = build_fleet(seed=5, regions=1, azs_per_region=1,
                        clusters_per_az=2, ncs_per_cluster=4, vms_per_nc=4,
                        arch=DeploymentArch.HYBRID, shared_fraction=0.5)
    vm_ids = sorted(fleet.vms)
    shared = [v for v in vm_ids
              if fleet.vms[v].vm_type is VmType.SHARED]

    # Product suppression: contention fires on every VM; only the
    # dedicated half is actionable.
    raw = [Event("vcpu_high", float(i), vm, level=Severity.WARNING)
           for i, vm in enumerate(vm_ids)]
    suppressor = ProductSuppressor([shared_vm_contention_rule(fleet)])
    kept_product = suppressor.filter(raw)

    # Trend suppression: 10 steady windows of ~20 slow_io events, then
    # one 5x surge window.
    trend = TrendSuppressor(min_history=3, sigmas=3.0)
    steady_kept = 0
    steady_total = 0
    for window in range(10):
        events = [Event("slow_io", float(i), f"vm-{i % 10}")
                  for i in range(20 + window % 3)]
        kept = trend.filter_window(events)
        if window >= 3:  # past warm-up
            steady_kept += len(kept)
            steady_total += len(events)
    surge = [Event("slow_io", float(i), f"vm-{i % 40}") for i in range(100)]
    surge_kept = trend.filter_window(surge)

    return {
        "raw_contention": len(raw),
        "kept_contention": len(kept_product),
        "shared_vms": len(shared),
        "steady_total": steady_total,
        "steady_kept": steady_kept,
        "surge_total": len(surge),
        "surge_kept": len(surge_kept),
    }


def test_sec2f_noise_reduction(benchmark):
    counts = run_once(benchmark, reproduce_noise_reduction)
    print_table(
        "Section II-F1: noise reduction",
        ["mechanism", "raw events", "kept (actionable)", "suppressed"],
        [
            ("product config (shared-VM contention)",
             counts["raw_contention"], counts["kept_contention"],
             counts["raw_contention"] - counts["kept_contention"]),
            ("trend (steady-state windows)",
             counts["steady_total"], counts["steady_kept"],
             counts["steady_total"] - counts["steady_kept"]),
            ("trend (surge window)",
             counts["surge_total"], counts["surge_kept"],
             counts["surge_total"] - counts["surge_kept"]),
        ],
    )
    # Exactly the shared half of contention events is suppressed.
    assert counts["kept_contention"] == (
        counts["raw_contention"] - counts["shared_vms"]
    )
    # Steady-state volume is fully absorbed; the surge passes through.
    assert counts["steady_kept"] == 0
    assert counts["surge_kept"] == counts["surge_total"]

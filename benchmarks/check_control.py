"""Gate the closed-loop scorecard artifact (``BENCH_control.json``).

The seeded control scenario injects one cluster-concentrated incident
per stability sub-metric; the closed-loop controller is expected to
catch all of them and to never act without an injected cause.  Two
hard gates enforce that promise on the artifact:

* **recall == 1.0** — every injected incident was detected;
* **false_positives == 0** — no confirmed episode fired without a
  matching active incident.

The remaining fields (latency, RCA accuracy, realized improvement)
are printed for inspection and sanity-checked for shape only, since
their exact values are seed-dependent.

Usage::

    python benchmarks/check_control.py                  # committed artifact
    python benchmarks/check_control.py --path out.json  # a fresh CI run

Exits non-zero with a diagnostic on any violation.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_control.json"


def check(data):
    """All violations found in one artifact (empty list = pass)."""
    errors = []
    if data.get("scenario") != "seeded":
        errors.append(
            f"gate expects the seeded scenario, got {data.get('scenario')!r}"
        )
    incidents = data.get("incidents", [])
    if not incidents:
        errors.append("artifact has no injected incidents to score against")
    if data.get("recall") != 1.0:
        missed = [i["incident_id"] for i in incidents
                  if not i.get("detected")]
        errors.append(
            f"recall is {data.get('recall')}, not 1.0 — missed: {missed}"
        )
    if data.get("false_positives") != 0:
        ghosts = [a["episode_id"] for a in data.get("actions", [])
                  if a.get("matched_incident") is None]
        errors.append(
            f"{data.get('false_positives')} false positive(s): {ghosts}"
        )
    for action in data.get("actions", []):
        if action.get("failed", 0) != 0:
            errors.append(
                f"{action['episode_id']}: {action['failed']} action "
                f"submission(s) failed"
            )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH,
                        help="artifact to check (default: committed one)")
    args = parser.parse_args(argv)

    data = json.loads(args.path.read_text())
    for incident in data.get("incidents", []):
        print(f"  {incident['incident_id']:<20} onset d{incident['onset_day']:02d}  "
              f"detected={incident['detected']}  "
              f"latency={incident['latency_days']}  "
              f"rca_correct={incident['rca_correct']}")
    for action in data.get("actions", []):
        print(f"  {action['episode_id']} {action['action']:<16} "
              f"effective={action['effective']}  "
              f"improvement={action['realized_improvement']:.4f}")
    errors = check(data)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"OK: seed {data.get('seed')} — recall 1.0, 0 false positives, "
          f"total improvement "
          f"{data.get('realized_improvement_total', 0.0):.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

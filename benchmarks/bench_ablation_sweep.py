"""Ablation — Algorithm 1 implementation: boundary sweep vs slot array.

The paper's pseudocode materializes a per-slot weight array
``W[T_s..T_e]``; our implementation sweeps exact event boundaries.
This ablation quantifies the trade-off: the sweep is exact for
arbitrary timestamps and scales with event count, while the slot array
scales with period length / slot size and snaps boundaries to slots.
"""

import numpy as np
import pytest
from conftest import print_table, run_once

from repro.core.indicator import (
    ServicePeriod,
    WeightedInterval,
    cdi,
    cdi_slotted,
)

DAY = 86400.0


def make_intervals(n: int, seed: int = 0, aligned: bool = False):
    rng = np.random.default_rng(seed)
    intervals = []
    for _ in range(n):
        start = float(rng.uniform(0, DAY - 7200))
        length = float(rng.uniform(120, 3600))
        if aligned:
            start = round(start / 60.0) * 60.0
            length = max(60.0, round(length / 60.0) * 60.0)
        intervals.append(
            WeightedInterval(start, start + length,
                             float(rng.uniform(0.1, 1.0)))
        )
    return intervals


class TestSweepVsSlotted:
    def test_accuracy_on_unaligned_timestamps(self, benchmark):
        service = ServicePeriod(0.0, DAY)

        def sweep_accuracy():
            rows = []
            for slot in (300.0, 60.0, 10.0):
                intervals = make_intervals(200, aligned=False)
                exact = cdi(intervals, service)
                approx = cdi_slotted(intervals, service, slot=slot)
                error = abs(approx - exact) / exact
                rows.append((f"{slot:.0f}s", f"{exact:.5f}",
                             f"{approx:.5f}", f"{error:.2%}"))
            return rows

        rows = run_once(benchmark, sweep_accuracy)
        print_table(
            "Ablation: slot-array accuracy vs slot size (sweep = exact)",
            ["slot", "sweep CDI", "slotted CDI", "relative error"], rows,
        )
        # Finer slots converge to the exact sweep.
        fine = cdi_slotted(make_intervals(200), service, slot=10.0)
        exact = cdi(make_intervals(200), service)
        assert fine == pytest.approx(exact, rel=0.05)

    def test_bench_sweep(self, benchmark):
        intervals = make_intervals(2000)
        service = ServicePeriod(0.0, DAY)
        value = benchmark(cdi, intervals, service)
        assert 0 < value <= 1

    def test_bench_slotted(self, benchmark):
        intervals = make_intervals(2000)
        service = ServicePeriod(0.0, DAY)
        value = benchmark(cdi_slotted, intervals, service, 60.0)
        assert 0 < value <= 1

    def test_bench_quantized(self, benchmark):
        """Vectorized union-by-weight-level variant (production weights
        are quantized into <= m*n levels)."""
        from repro.core.indicator import damage_integral_quantized

        rng = np.random.default_rng(0)
        levels = np.array([0.25, 0.5, 0.625, 0.75, 1.0])
        intervals = []
        for _ in range(2000):
            start = float(rng.uniform(0, DAY - 7200))
            intervals.append(WeightedInterval(
                start, start + float(rng.uniform(120, 3600)),
                float(rng.choice(levels)),
            ))
        service = ServicePeriod(0.0, DAY)
        value = benchmark(damage_integral_quantized, intervals, service)
        exact = cdi(intervals, service) * service.duration
        assert value == pytest.approx(exact, rel=1e-9)

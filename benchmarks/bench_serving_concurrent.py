"""Concurrent serving under live writes: multi-client QPS + latency.

The paper's platform serves many simultaneous consumers (BI
dashboards, CloudBot, operators) while the daily pipeline keeps
writing.  This benchmark reproduces that shape end to end over the
real socket front end:

* a sharded :class:`repro.serving.QueryService` behind the asyncio
  listener (``ServerThread``, real TCP on localhost);
* a **write-heavy backfill** thread overwriting ``vm_cdi`` /
  ``event_cdi`` partitions in a loop for the whole run, so every
  measurement races generation bumps and cache invalidations;
* **closed-loop clients** (:class:`repro.serving.LineClient`): each
  keeps exactly one request in flight, cycling a representative
  payload mix and recording per-request latency.

Two phases run for ``REPRO_BENCH_DURATION_S`` each: one client (the
latency-bound baseline — each request pays a full round trip) and
``REPRO_BENCH_CLIENTS`` concurrent clients (concurrency hides round
trips and overlaps parse/serialize with shard merges).  The artifact
is the ``concurrent`` section of ``BENCH_serving.json`` — sustained
QPS, p50/p99 latency, client speedup, admission + cache counters —
gated in CI by ``check_serving_speedup.py``.
"""

import json
import threading
import time

from conftest import (
    bench_clients,
    bench_days,
    bench_duration_s,
    bench_result_path,
    bench_vm_count,
    print_table,
)

from bench_serving_qps import build_backfilled_job
from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE
from repro.serving import (
    AdmissionController,
    LineClient,
    QueryService,
    ServerThread,
)

VM_COUNT = bench_vm_count(1000)
DAYS = bench_days(5)
CLIENTS = bench_clients(8)
DURATION_S = bench_duration_s(5.0)
SHARDS = 4

RESULT_PATH = bench_result_path(
    "BENCH_serving.json", env="REPRO_BENCH_SERVING_RESULT_PATH"
)


def payload_mix(days):
    """The wire payloads one client cycles through (dashboard-shaped)."""
    mix = []
    for day in days:
        mix.append({"kind": "fleet", "day": day})
        mix.append({"kind": "top-events", "day": day, "k": 5})
        mix.append({"kind": "group-by", "day": day, "dimension": "region"})
        mix.append({"kind": "top-vms", "day": day,
                    "category": "performance", "k": 5})
    mix.append({"kind": "range"})
    mix.append({"kind": "trend", "category": "unavailability"})
    return mix


#: Pause between backfill sweeps.  Small but nonzero: every sweep
#: still invalidates every cached rollup (write-heavy), but merges get
#: a window to land — a zero-pause writer livelocks every multi-day
#: merge into (correct, typed) ``unavailable`` shedding, which is a
#: stress test, not a throughput measurement.
WRITER_PAUSE_S = 0.002


class BackfillWriter:
    """Continuously overwrites day partitions (write-heavy backfill)."""

    def __init__(self, tables, days):
        self._vm_table = tables.get(VM_CDI_TABLE)
        self._event_table = tables.get(EVENT_CDI_TABLE)
        self._day_rows = [
            (day, self._vm_table.rows(partition=day),
             self._event_table.rows(partition=day))
            for day in days
        ]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="bench-backfill", daemon=True)
        self.writes = 0

    def _run(self):
        while not self._stop.is_set():
            for day, vm_rows, event_rows in self._day_rows:
                if self._stop.is_set():
                    break
                self._vm_table.overwrite_partition(vm_rows, day)
                self._event_table.overwrite_partition(event_rows, day)
                self.writes += 2
            if WRITER_PAUSE_S:
                self._stop.wait(WRITER_PAUSE_S)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=10.0)


def run_phase(address, mix, clients, duration_s):
    """Closed-loop load phase: ``clients`` connections for ``duration_s``.

    Returns (total completed queries, wall seconds, sorted latencies).
    """
    start_barrier = threading.Barrier(clients + 1)
    deadline_event = threading.Event()
    latencies_per_client = [[] for _ in range(clients)]
    shed = [0] * clients
    errors = []

    def worker(slot):
        try:
            with LineClient(address, timeout=60.0) as client:
                start_barrier.wait()
                recorded = latencies_per_client[slot]
                position = slot  # stagger starting offsets
                while not deadline_event.is_set():
                    payload = mix[position % len(mix)]
                    position += 1
                    started = time.perf_counter()
                    response = client.request(payload)
                    if response.get("ok") is True:
                        recorded.append(time.perf_counter() - started)
                    elif response.get("error", {}).get("kind") in (
                            "unavailable", "overloaded", "rate_limited"):
                        # Typed load shedding: counted, not a failure.
                        shed[slot] += 1
                    else:
                        errors.append(response)
                        return
        except Exception as error:  # pragma: no cover
            errors.append(repr(error))
            try:
                start_barrier.abort()
            except Exception:
                pass

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    phase_started = time.perf_counter()
    time.sleep(duration_s)
    deadline_event.set()
    for thread in threads:
        thread.join(timeout=60.0)
    wall = time.perf_counter() - phase_started
    assert not errors, f"client errors: {errors[:3]}"
    latencies = sorted(
        value for per_client in latencies_per_client for value in per_client
    )
    return len(latencies), wall, latencies, sum(shed)


def percentile(latencies, fraction):
    """The ``fraction`` quantile of a sorted latency list (seconds)."""
    if not latencies:
        return 0.0
    index = min(len(latencies) - 1, int(fraction * len(latencies)))
    return latencies[index]


def test_serving_concurrent(benchmark):
    job, fleet = build_backfilled_job()
    days = sorted(job.tables.get(VM_CDI_TABLE).partitions)
    mix = payload_mix(days)
    admission = AdmissionController(max_in_flight=max(64, CLIENTS * 4))
    service = QueryService(job.tables, resolver=fleet.dimensions_of,
                           shards=SHARDS)

    with service, BackfillWriter(job.tables, days) as writer, \
            ServerThread(service, admission=admission) as server:

        def measured():
            single = run_phase(server.address, mix, 1, DURATION_S)
            multi = run_phase(server.address, mix, CLIENTS, DURATION_S)
            return single, multi

        single, multi = benchmark.pedantic(measured, rounds=1, iterations=1)
        admission_stats = admission.stats

    single_count, single_wall, single_lat, single_shed = single
    multi_count, multi_wall, multi_lat, multi_shed = multi
    single_qps = single_count / single_wall
    multi_qps = multi_count / multi_wall
    client_speedup = multi_qps / single_qps if single_qps else 0.0
    cache = service.cache_stats

    def fmt_ms(seconds):
        return f"{seconds * 1000:.2f} ms"

    print_table(
        "Concurrent serving vs live backfill (closed-loop TCP clients)",
        ["quantity", "1 client", f"{CLIENTS} clients"],
        [
            ("completed queries", single_count, multi_count),
            ("sustained QPS", f"{single_qps:,.0f}", f"{multi_qps:,.0f}"),
            ("p50 latency", fmt_ms(percentile(single_lat, 0.50)),
             fmt_ms(percentile(multi_lat, 0.50))),
            ("p99 latency", fmt_ms(percentile(single_lat, 0.99)),
             fmt_ms(percentile(multi_lat, 0.99))),
            ("client speedup", "1.0x", f"{client_speedup:.1f}x"),
            ("shed (typed rejections)", single_shed, multi_shed),
            ("backfill writes during run", "-", writer.writes),
            ("admitted / rejected", "-",
             f"{admission_stats.admitted} / "
             f"{admission_stats.rejected_overload + admission_stats.rejected_rate}"),
        ],
    )

    section = {
        "clients": CLIENTS,
        "duration_s": DURATION_S,
        "shards": SHARDS,
        "vm_count": len(fleet.vms),
        "days": DAYS,
        "single_client_qps": single_qps,
        "multi_client_qps": multi_qps,
        "client_speedup": client_speedup,
        "single_p50_ms": percentile(single_lat, 0.50) * 1000,
        "single_p99_ms": percentile(single_lat, 0.99) * 1000,
        "multi_p50_ms": percentile(multi_lat, 0.50) * 1000,
        "multi_p99_ms": percentile(multi_lat, 0.99) * 1000,
        "single_shed": single_shed,
        "multi_shed": multi_shed,
        "backfill_writes": writer.writes,
        "admitted": admission_stats.admitted,
        "rejected_overload": admission_stats.rejected_overload,
        "rejected_rate": admission_stats.rejected_rate,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    }
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    existing["concurrent"] = section
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\nresult JSON: {RESULT_PATH}")

    assert single_count > 0 and multi_count > 0
    assert writer.writes > 0, "backfill never raced the readers"
    assert client_speedup > 1.0

"""Ablation — per-sub-metric tests vs weighted-sum aggregation.

Section VI-D: "it is possible to aggregate the three sub-metrics into
a single one using techniques like weighted summation before
proceeding with the test."  This ablation quantifies the trade-off:
when the action difference lives in one sub-metric and the other two
are noisy but indistinguishable, folding them in dilutes the signal —
the aggregate needs more samples to reach significance.  We sweep the
sample size and report the smallest n at which each approach detects
the difference.
"""

import numpy as np
from conftest import print_table, run_once

from repro.abtest.analysis import analyze
from repro.abtest.experiment import AbExperiment, Variant
from repro.core.events import EventCategory
from repro.core.indicator import CdiReport

EQUAL_WEIGHTS = {category: 1.0 for category in EventCategory}
SAMPLE_SIZES = (10, 20, 40, 80, 160, 320)
#: Small true difference in the Performance sub-metric only.
PERF_MEANS = {"A": 0.30, "B": 0.24}
#: The other sub-metrics are equally noisy but identical across arms.
NOISE_SIGMA = 0.10


def build_subtle_experiment(n: int, seed: int) -> AbExperiment:
    experiment = AbExperiment(
        "subtle_rule", [Variant("A", 0.5), Variant("B", 0.5)], seed=seed,
    )
    rng = np.random.default_rng(seed)
    for name, perf_mean in PERF_MEANS.items():
        for i in range(n):
            experiment.record(
                f"vm-{name}-{i}", name,
                CdiReport(
                    unavailability=float(
                        np.clip(rng.normal(0.3, NOISE_SIGMA), 0, 1)
                    ),
                    performance=float(
                        np.clip(rng.normal(perf_mean, NOISE_SIGMA), 0, 1)
                    ),
                    control_plane=float(
                        np.clip(rng.normal(0.3, NOISE_SIGMA), 0, 1)
                    ),
                    service_time=86400.0,
                ),
            )
    return experiment


def detection_table():
    rows = []
    first_per_metric = None
    first_aggregate = None
    for n in SAMPLE_SIZES:
        # Average p-values over a few seeds to damp draw luck.
        per_ps, agg_ps = [], []
        for seed in range(5):
            experiment = build_subtle_experiment(n, seed=seed)
            analysis = analyze(experiment, aggregate_weights=EQUAL_WEIGHTS)
            per_ps.append(
                analysis.by_category[EventCategory.PERFORMANCE]
                .workflow.omnibus.pvalue
            )
            agg_ps.append(analysis.aggregate.workflow.omnibus.pvalue)
        per_p = float(np.median(per_ps))
        agg_p = float(np.median(agg_ps))
        rows.append((
            n,
            f"{per_p:.4f}" + ("*" if per_p < 0.05 else ""),
            f"{agg_p:.4f}" + ("*" if agg_p < 0.05 else ""),
        ))
        if per_p < 0.05 and first_per_metric is None:
            first_per_metric = n
        if agg_p < 0.05 and first_aggregate is None:
            first_aggregate = n
    return rows, first_per_metric, first_aggregate


def test_ablation_aggregate_vs_per_submetric(benchmark):
    rows, first_per_metric, first_aggregate = run_once(
        benchmark, detection_table
    )
    print_table(
        "Ablation: median omnibus p by hits/arm (* = significant at 0.05)",
        ["hits/arm", "Performance sub-metric", "equal-weight aggregate"],
        rows,
    )
    print(f"\nfirst significant: per-sub-metric at n={first_per_metric}, "
          f"aggregate at n={first_aggregate}")
    # Dilution: the aggregate never detects earlier, and its evidence
    # is consistently weaker (larger p) once real signal is present.
    assert first_per_metric is not None
    assert first_aggregate is None or first_per_metric <= first_aggregate
    weaker = sum(
        1 for _, per_p, agg_p in rows
        if float(per_p.rstrip("*")) <= float(agg_p.rstrip("*"))
    )
    assert weaker >= len(rows) - 1

"""Table IV — the paper's worked CDI example, reproduced exactly.

Three VMs with packet_loss / vcpu_high / slow_io events; the paper
computes per-VM CDIs of 0.020, 0.002 and 0.004 and a Formula 4
aggregate of 0.003.  Algorithm 1 must hit those numbers exactly.
The benchmark also times Algorithm 1 on the worked example.
"""

import pytest
from conftest import print_table

from repro.core.indicator import ServicePeriod, WeightedInterval, aggregate, cdi


def minutes(h: int, m: int) -> float:
    return h * 60.0 + m


VM_CASES = {
    1: (
        [
            WeightedInterval(minutes(10, 8), minutes(10, 10), 0.3, "packet_loss"),
            WeightedInterval(minutes(10, 10), minutes(10, 12), 0.3, "packet_loss"),
        ],
        ServicePeriod(minutes(10, 0), minutes(11, 0)),
        0.020,
    ),
    2: (
        [WeightedInterval(minutes(13, 25), minutes(13, 30), 0.6, "vcpu_high")],
        ServicePeriod(0.0, 1440.0),
        0.002,
    ),
    3: (
        [
            WeightedInterval(minutes(8, 8), minutes(8, 10), 0.5, "slow_io"),
            WeightedInterval(minutes(8, 10), minutes(8, 12), 0.5, "slow_io"),
            WeightedInterval(minutes(8, 10), minutes(8, 15), 0.6, "vcpu_high"),
        ],
        ServicePeriod(0.0, 1000.0),
        0.004,
    ),
}


def compute_all() -> dict[int, float]:
    return {
        vm: cdi(intervals, service)
        for vm, (intervals, service, _) in VM_CASES.items()
    }


def test_table4_worked_example(benchmark):
    results = benchmark(compute_all)
    q_all = aggregate([
        (service.duration, results[vm])
        for vm, (_, service, _) in VM_CASES.items()
    ])
    rows = [
        (vm, f"{expected:.3f}", f"{results[vm]:.3f}")
        for vm, (_, _, expected) in VM_CASES.items()
    ] + [("All", "0.003", f"{q_all:.3f}")]
    print_table("Table IV: worked CDI example (paper vs reproduced)",
                ["VM", "paper CDI", "reproduced CDI"], rows)
    for vm, (_, _, expected) in VM_CASES.items():
        assert results[vm] == pytest.approx(expected, abs=5e-4)
    assert q_all == pytest.approx(0.003, abs=5e-4)

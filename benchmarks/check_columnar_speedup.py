"""CI gate: the columnar daily-job path must not be slower than rows.

Reads the JSON artifact written by ``bench_sec5_pipeline_scale.py``
and fails (exit 1) when ``columnar_speedup_vs_rows`` falls below the
threshold.  CI runs the smoke fleet with threshold 1.0 ("never
slower"); the committed full-scale artifact is held to the 1.5x bar
of the columnar-refactor acceptance criteria.

Usage::

    python benchmarks/check_columnar_speedup.py RESULT.json [THRESHOLD]
"""

import json
import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[1])
    threshold = float(argv[2]) if len(argv) == 3 else 1.0
    data = json.loads(path.read_text())
    speedup = data.get("columnar_speedup_vs_rows")
    if speedup is None:
        print(f"{path}: no columnar_speedup_vs_rows key — "
              f"was the benchmark run with the columnar comparison?",
              file=sys.stderr)
        return 1
    columnar_ms = data["job_run_columnar_seconds"] * 1000
    rows_ms = data["job_run_rows_seconds"] * 1000
    print(f"columnar {columnar_ms:.1f} ms vs rows {rows_ms:.1f} ms "
          f"at {data['vm_count']} VMs: {speedup:.2f}x "
          f"(threshold {threshold:.2f}x)")
    if speedup < threshold:
        print(f"FAIL: columnar path is below the {threshold:.2f}x bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

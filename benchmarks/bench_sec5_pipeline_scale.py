"""Section V — implementation scale of the daily CDI job.

Paper: the production Spark job processes ~10 GB of events on 100
executors × 8 cores; the end-to-end run takes ~2 hours dominated by
cleaning/IO, while the *core CDI computation* is ~500 seconds.  We
cannot match a production cluster, but we reproduce the job's
structure at laptop scale and report the analogous breakdown: total
wall time vs core-computation task time, plus engine task counts.

Besides the printed table, the benchmark writes a machine-readable
``BENCH_pipeline_scale.json`` next to the repo root so the perf
trajectory is tracked across PRs: end-to-end wall time (best of
:data:`TIMED_REPEATS`), core-compute task seconds, task counts, the
executor backend, the speedup against the recorded pre-fast-path
seed baseline, and per-stage wall timings from a completeness-
validated run trace (the Spark-UI analogue).

Environment knobs: ``REPRO_BENCH_BACKEND`` selects the executor
backend (``thread``/``process``; threads are the default and the
right choice here — the fast path's hot loop is a numpy kernel);
``REPRO_BENCH_VM_COUNT`` overrides the fleet size (CI smoke runs a
smaller fleet); ``REPRO_BENCH_RESULT_PATH`` redirects the JSON
artifact.
"""

import json
import time

from conftest import (
    bench_backend,
    bench_result_path,
    bench_vm_count,
    print_table,
    run_once,
)

from repro.core.events import default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import EVENTS_TABLE
from repro.scenarios.common import default_weights, fault_to_period
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import FaultInjector, baseline_rates

DAY = 86400.0
VM_COUNT = bench_vm_count(2000)
PARALLELISM = 8
#: Extra timed end-to-end repeats for the JSON artifact (the reported
#: wall time is the minimum — standard practice for wall benchmarks).
TIMED_REPEATS = 5

#: Where the machine-readable result lands (repo root).
RESULT_PATH = bench_result_path("BENCH_pipeline_scale.json")

#: End-to-end wall seconds of this benchmark at the growth seed
#: (commit 996a564: pure-Python per-VM sweeps + per-event-name
#: re-sweeps on the thread pool), measured as best-of-5 on the same
#: 8-core container that produced the committed artifact.  Kept here
#: so every rerun reports its speedup against the same "before".
SEED_BASELINE_WALL_SECONDS = 0.0775


def build_job_inputs():
    from repro.core.events import Event

    vm_ids = [f"vm-{i:05d}" for i in range(VM_COUNT)]
    injector = FaultInjector(baseline_rates(scale=20.0), seed=0)
    faults = injector.sample(vm_ids, 0.0, DAY)
    catalog = default_catalog()
    events = []
    for fault in faults:
        period = fault_to_period(fault, catalog)
        events.append(Event(
            name=period.name, time=period.end, target=period.target,
            expire_interval=600.0, level=period.level,
            attributes={"duration": period.duration},
        ))
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    return events, services


def run_daily_job(events, services, backend=None, trace=None):
    context = EngineContext(
        parallelism=PARALLELISM,
        backend=backend or bench_backend(),
    )
    job = DailyCdiJob(context, TableStore(), ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    job.ingest_events(events, "bench")
    result = job.run("bench", services, trace=trace)
    return result, context.last_job_metrics


def _best_of(repeats, fn, *args, **kwargs):
    walls = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn(*args, **kwargs)
        walls.append(time.perf_counter() - started)
    return min(walls)


def compare_compute_paths(events, services, backend):
    """Row-dict vs columnar timings on one shared, pre-ingested job.

    Times only :meth:`DailyCdiJob.run` (the daily compute), not job
    construction or ingestion, so the ratio isolates the scan + resolve
    path difference; plus the raw table-scan timings underneath.
    """
    context = EngineContext(parallelism=PARALLELISM, backend=backend)
    job = DailyCdiJob(context, TableStore(), ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    job.ingest_events(events, "bench")
    # Warm both paths (seals the column blocks, fills weight caches).
    job.run("bench", services, use_columnar=True)
    job.run("bench", services, use_columnar=False)
    run_columnar = _best_of(TIMED_REPEATS, job.run, "bench", services,
                            use_columnar=True)
    run_rows = _best_of(TIMED_REPEATS, job.run, "bench", services,
                        use_columnar=False)

    table = job.tables.get(EVENTS_TABLE)
    scan_rows = _best_of(TIMED_REPEATS, table.rows, "bench")
    scan_columns = _best_of(TIMED_REPEATS, table.columns, "bench")
    return {
        "job_run_columnar_seconds": run_columnar,
        "job_run_rows_seconds": run_rows,
        "columnar_speedup_vs_rows": run_rows / run_columnar,
        "scan_rows_seconds": scan_rows,
        "scan_columns_seconds": scan_columns,
    }


def test_sec5_pipeline_scale(benchmark):
    backend = bench_backend()
    events, services = build_job_inputs()
    result, metrics = run_once(benchmark, run_daily_job, events, services)
    core_seconds = metrics.total_seconds

    # Steady-state repeats for the JSON artifact (the single
    # benchmark-harness round above still carries warmup costs).
    walls = []
    for _ in range(TIMED_REPEATS):
        started = time.perf_counter()
        run_daily_job(events, services)
        walls.append(time.perf_counter() - started)
    wall_seconds = min(walls)

    paths = compare_compute_paths(events, services, backend)

    # One traced run for the per-stage breakdown (the analogue of
    # reading the production job's Spark UI): pipeline + node stage
    # wall seconds, validated for completeness before they are
    # trusted enough to land in the artifact.
    from repro.engine.trace import RunTrace

    trace = RunTrace("bench")
    _, traced_metrics = run_daily_job(events, services, trace=trace)
    assert trace.validate(traced_metrics) == []
    stage_seconds = trace.stage_seconds()
    slowest = sorted(stage_seconds.items(), key=lambda kv: -kv[1])

    print_table(
        "Section V: daily job scale (laptop-scale analogue)",
        ["quantity", "paper (production)", "reproduced"],
        [
            ("input events", "~10 GB/day", f"{result.event_count} events"),
            ("VMs", "tens of millions", f"{result.vm_count}"),
            ("executors", "100 x 8 cores",
             f"1 x {PARALLELISM} {backend}s"),
            ("core CDI task time", "~500 s",
             f"{core_seconds:.2f} s across {metrics.task_count} tasks"),
            ("end-to-end wall", "~2 h",
             f"{wall_seconds * 1000:.1f} ms (best of {TIMED_REPEATS})"),
            ("speedup vs seed", "-",
             f"{SEED_BASELINE_WALL_SECONDS / wall_seconds:.1f}x"),
            ("columnar vs row-dict run", "-",
             f"{paths['columnar_speedup_vs_rows']:.1f}x "
             f"({paths['job_run_columnar_seconds'] * 1000:.1f} ms vs "
             f"{paths['job_run_rows_seconds'] * 1000:.1f} ms)"),
            ("columnar vs row scan", "-",
             f"{paths['scan_columns_seconds'] * 1000:.2f} ms vs "
             f"{paths['scan_rows_seconds'] * 1000:.2f} ms"),
            *[
                (f"stage: {name}", "-", f"{seconds * 1000:.2f} ms")
                for name, seconds in slowest[:4]
            ],
        ],
    )

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "sec5_pipeline_scale",
        "vm_count": result.vm_count,
        "event_count": result.event_count,
        "backend": backend,
        "parallelism": PARALLELISM,
        "timed_repeats": TIMED_REPEATS,
        "wall_seconds": wall_seconds,
        "core_compute_seconds": core_seconds,
        "task_count": metrics.task_count,
        "seed_baseline_wall_seconds": SEED_BASELINE_WALL_SECONDS,
        "speedup_vs_seed": SEED_BASELINE_WALL_SECONDS / wall_seconds,
        "stage_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(stage_seconds.items())
        },
        **paths,
    }, indent=2) + "\n")

    assert result.vm_count == VM_COUNT
    assert result.event_count == len(events)
    assert metrics.task_count > 0


def test_sec5_core_cdi_throughput(benchmark):
    """Microbenchmark of Algorithm 1 itself: events/second swept."""
    import numpy as np

    from repro.core.indicator import ServicePeriod, WeightedInterval, cdi

    rng = np.random.default_rng(0)
    starts = rng.uniform(0.0, DAY, 5000)
    intervals = [
        WeightedInterval(float(s), float(s + rng.uniform(60, 3600)),
                         float(rng.uniform(0.1, 1.0)))
        for s in starts
    ]
    service = ServicePeriod(0.0, DAY)
    value = benchmark(cdi, intervals, service)
    assert 0.0 < value <= 1.0

"""Section V — implementation scale of the daily CDI job.

Paper: the production Spark job processes ~10 GB of events on 100
executors × 8 cores; the end-to-end run takes ~2 hours dominated by
cleaning/IO, while the *core CDI computation* is ~500 seconds.  We
cannot match a production cluster, but we reproduce the job's
structure at laptop scale and report the analogous breakdown: total
wall time vs core-computation task time, plus engine task counts.
"""

from conftest import print_table, run_once

from repro.core.events import default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import DailyCdiJob
from repro.scenarios.common import default_weights, fault_to_period
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import FaultInjector, baseline_rates

DAY = 86400.0
VM_COUNT = 2000


def build_job_inputs():
    from repro.core.events import Event

    vm_ids = [f"vm-{i:05d}" for i in range(VM_COUNT)]
    injector = FaultInjector(baseline_rates(scale=20.0), seed=0)
    faults = injector.sample(vm_ids, 0.0, DAY)
    catalog = default_catalog()
    events = []
    for fault in faults:
        period = fault_to_period(fault, catalog)
        events.append(Event(
            name=period.name, time=period.end, target=period.target,
            expire_interval=600.0, level=period.level,
            attributes={"duration": period.duration},
        ))
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    return events, services


def run_daily_job(events, services):
    context = EngineContext(parallelism=8)
    job = DailyCdiJob(context, TableStore(), ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    job.ingest_events(events, "bench")
    result = job.run("bench", services)
    return result, context.last_job_metrics


def test_sec5_pipeline_scale(benchmark):
    events, services = build_job_inputs()
    result, metrics = run_once(benchmark, run_daily_job, events, services)
    core_seconds = metrics.total_seconds
    print_table(
        "Section V: daily job scale (laptop-scale analogue)",
        ["quantity", "paper (production)", "reproduced"],
        [
            ("input events", "~10 GB/day", f"{result.event_count} events"),
            ("VMs", "tens of millions", f"{result.vm_count}"),
            ("executors", "100 x 8 cores", "1 x 8 threads"),
            ("core CDI task time", "~500 s",
             f"{core_seconds:.2f} s across {metrics.task_count} tasks"),
        ],
    )
    assert result.vm_count == VM_COUNT
    assert result.event_count == len(events)
    assert metrics.task_count > 0


def test_sec5_core_cdi_throughput(benchmark):
    """Microbenchmark of Algorithm 1 itself: events/second swept."""
    import numpy as np

    from repro.core.indicator import ServicePeriod, WeightedInterval, cdi

    rng = np.random.default_rng(0)
    starts = rng.uniform(0.0, DAY, 5000)
    intervals = [
        WeightedInterval(float(s), float(s + rng.uniform(60, 3600)),
                         float(rng.uniform(0.1, 1.0)))
        for s in starts
    ]
    service = ServicePeriod(0.0, DAY)
    value = benchmark(cdi, intervals, service)
    assert 0.0 < value <= 1.0

"""Out-of-core fleet scaling: 1k → 100k VMs in bounded memory.

The paper's daily job processes the *whole* Alibaba Cloud fleet —
tens of millions of VMs — on a Spark cluster where no single executor
ever holds a day of raw events.  This benchmark reproduces that
property at repo scale: one process ingests and computes a full
synthetic day for fleets of 1k, 10k and 100k VMs through the
out-of-core path and reports throughput plus **peak RSS** per scale
point, so ``check_fleet_scale.py`` can gate that memory grows
sublinearly in fleet size (the day is streamed, never resident).

The out-of-core path under test, end to end:

* :func:`repro.telemetry.fleetgen.iter_fleet_faults` generates ground
  truth one VM shard at a time (never the whole fleet's faults);
* each shard's events are ingested into a
  :class:`repro.storage.SpillTable` partition via
  ``DailyCdiJob.ingest_events(..., unit=shard.unit)`` — the spill
  table pages event columns to disk above a fixed byte threshold;
* ``run_checkpointed(..., sharded_events=True)`` computes shard by
  shard, each pass scanning only its own per-shard events partition.

Because ``resource.getrusage`` reports a process-lifetime high-water
mark, every scale point runs in its **own subprocess** (this file
re-invoked as a script prints one JSON point on stdout); the pytest
orchestrator collects the points into ``BENCH_fleet_scale.json``.

Environment knobs: ``REPRO_BENCH_FLEET_VM_COUNTS`` overrides the
scale points (CI smoke runs ``10000`` alone), ``REPRO_BENCH_BACKEND``
the executor backend, ``REPRO_CHAOS_SEED`` the fault seed, and
``REPRO_BENCH_FLEET_RESULT_PATH`` redirects the JSON artifact.
"""

import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from conftest import (
    REPO_ROOT,
    bench_backend,
    bench_result_path,
    bench_vm_counts,
    chaos_seed,
    print_table,
    run_once,
)

DAY = 86400.0
PARTITION = "fleet-day"
PARALLELISM = 8
#: Contiguous VM shards: generation, ingestion and compute all use the
#: same split, so one shard is the unit of residency.
SHARDS = 16
#: Per-partition in-memory budget before event columns spill to disk.
#: Deliberately tiny (one shard of the 1k fleet is ~24 KiB of event
#: columns) so every scale point actually stages its day on disk.
SPILL_BYTES = 16 << 10
#: Expected faults/VM/day ≈ 1.5 at this scale factor (matches the
#: Section V pipeline bench), so 100k VMs ≈ 150k events.
FAULT_SCALE = 20.0
DEFAULT_VM_COUNTS = [1_000, 10_000, 100_000]

RESULT_PATH = bench_result_path(
    "BENCH_fleet_scale.json", env="REPRO_BENCH_FLEET_RESULT_PATH"
)


def run_scale_point(vm_count):
    """One full out-of-core day at ``vm_count`` VMs; returns the point."""
    from repro.core.events import Event, default_catalog
    from repro.core.indicator import ServicePeriod
    from repro.engine.dataset import EngineContext
    from repro.pipeline.checkpoint import JobCheckpoint
    from repro.pipeline.daily import DailyCdiJob
    from repro.pipeline.tables import EVENTS_TABLE, events_schema
    from repro.scenarios.common import default_weights, fault_to_period
    from repro.storage import SpillTable
    from repro.storage.configdb import ConfigDB
    from repro.storage.table import TableStore
    from repro.telemetry.faults import baseline_rates
    from repro.telemetry.fleetgen import iter_fleet_faults

    catalog = default_catalog()
    vm_ids = [f"vm-{i:06d}" for i in range(vm_count)]
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    rates = baseline_rates(scale=FAULT_SCALE)
    seed = chaos_seed() or 0

    with tempfile.TemporaryDirectory(prefix="fleet_scale_") as tmp:
        tmp_path = Path(tmp)
        store = TableStore()
        store.add(SpillTable(EVENTS_TABLE, events_schema(),
                             spool_dir=tmp_path, spill_bytes=SPILL_BYTES))
        context = EngineContext(parallelism=PARALLELISM,
                                backend=bench_backend())
        job = DailyCdiJob(context, store, ConfigDB(), catalog)
        job.store_weights(default_weights())

        started = time.perf_counter()
        event_count = 0
        for shard, faults in iter_fleet_faults(
            vm_ids, SHARDS, rates, 0.0, DAY, seed=seed
        ):
            events = []
            for fault in faults:
                period = fault_to_period(fault, catalog)
                events.append(Event(
                    name=period.name, time=period.end, target=period.target,
                    expire_interval=600.0, level=period.level,
                    attributes={"duration": period.duration},
                ))
            event_count += job.ingest_events(events, PARTITION,
                                             unit=shard.unit)
        ingest_seconds = time.perf_counter() - started
        spool_bytes = sum(
            spool.stat().st_size for spool in tmp_path.glob("*.spool.jsonl")
        )

        started = time.perf_counter()
        result = job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "checkpoint.json"),
            shards=SHARDS, sharded_events=True,
        )
        compute_seconds = time.perf_counter() - started

        assert result.vm_count == vm_count
        assert result.event_count == event_count

    # Linux reports ru_maxrss in KiB.  Lifetime high-water mark — the
    # reason each point runs in a fresh subprocess.
    peak_rss_mb = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    )
    total = ingest_seconds + compute_seconds
    return {
        "vm_count": vm_count,
        "event_count": event_count,
        "shards": SHARDS,
        "ingest_seconds": ingest_seconds,
        "compute_seconds": compute_seconds,
        "total_seconds": total,
        "rows_per_second": event_count / total,
        "compute_rows_per_second": event_count / compute_seconds,
        "spool_bytes": spool_bytes,
        "peak_rss_mb": peak_rss_mb,
    }


def run_point_subprocess(vm_count):
    """Run one scale point in a fresh interpreter; parse its JSON."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not extra else src + os.pathsep + extra
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), str(vm_count)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point {vm_count} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run_sweep(vm_counts):
    """All scale points, smallest first, one subprocess each."""
    return [run_point_subprocess(count) for count in sorted(vm_counts)]


def test_fleet_scale(benchmark):
    vm_counts = bench_vm_counts(DEFAULT_VM_COUNTS)
    points = run_once(benchmark, run_sweep, vm_counts)

    print_table(
        "Out-of-core fleet scale (per-point subprocess)",
        ["VMs", "events", "ingest", "compute", "rows/s", "peak RSS"],
        [
            (f"{p['vm_count']:,}", f"{p['event_count']:,}",
             f"{p['ingest_seconds']:.2f} s",
             f"{p['compute_seconds']:.2f} s",
             f"{p['rows_per_second']:,.0f}",
             f"{p['peak_rss_mb']:.1f} MB")
            for p in points
        ],
    )

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "fleet_scale",
        "backend": bench_backend(),
        "parallelism": PARALLELISM,
        "shards": SHARDS,
        "spill_bytes": SPILL_BYTES,
        "fault_scale": FAULT_SCALE,
        "points": points,
    }, indent=2) + "\n")
    print(f"\nresult JSON: {RESULT_PATH}")

    assert points, "no scale points configured"
    for point in points:
        assert point["event_count"] > 0
        assert point["rows_per_second"] > 0
        assert point["peak_rss_mb"] > 0


if __name__ == "__main__":
    print(json.dumps(run_scale_point(int(sys.argv[1]))))

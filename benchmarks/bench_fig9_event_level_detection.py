"""Fig. 9 — event-level CDI for potential problem detection.

* Fig. 9(a) / Case 6: ``vm_allocation_failed`` event-level CDI spikes
  on Day 14 (scheduler data corruption) and reverts on Day 15 after
  the fix.
* Fig. 9(b) / Case 7: ``inspect_cpu_power_tdp`` event-level CDI dips
  from Day 13 (broken power sensor reads zero watts) and recovers from
  Day 18 — the case that taught the team to scrutinize dips as much as
  spikes.

The benchmark regenerates both curves and checks that the K-Sigma+EVT
detector flags the spike *and* the dip with the right direction.
"""

from conftest import print_series, run_once

from repro.analytics.detect import CdiCurveDetector
from repro.scenarios.event_level import simulate_event_level_curves


def reproduce_fig9():
    return simulate_event_level_curves(seed=0)


def test_fig9_event_level_detection(benchmark):
    curves = run_once(benchmark, reproduce_fig9)
    print_series(
        "Fig. 9: event-level CDI curves",
        {
            "(a) vm_allocation_failed": curves.allocation_failed,
            "(b) inspect_cpu_power_tdp": curves.power_tdp,
        },
    )
    detector = CdiCurveDetector(window=7, k=3.0, calibration=10)

    spike_detections = detector.detect(curves.allocation_failed)
    spike_days = {
        d.index + 1 for d in spike_detections if d.direction == "spike"
    }
    print(f"\n(a) spike detections on days: {sorted(spike_days)} "
          f"(injected: day {curves.spike_day})")
    assert curves.spike_day in spike_days

    dip_detections = detector.detect(curves.power_tdp)
    dip_days = {d.index + 1 for d in dip_detections if d.direction == "dip"}
    print(f"(b) dip detections on days: {sorted(dip_days)} "
          f"(injected: days {curves.dip_start}-{curves.dip_end})")
    assert any(
        curves.dip_start <= day <= curves.dip_end + 1 for day in dip_days
    )

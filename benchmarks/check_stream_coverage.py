"""CI gate: no-decrease coverage for ``src/repro/streaming/``.

Reads a ``coverage.py`` JSON report (written by the CI ``stream`` job
via ``pytest --cov=repro.streaming --cov-report=json:FILE``), filters
it to the streaming package, and fails (exit 1) when the aggregate
line coverage drops below the committed baseline in
``benchmarks/stream_coverage_baseline.json``.

The baseline is a manually-ratcheted floor, not an auto-updated
high-water mark: raise it by hand when new tests durably push
coverage up, so a regression can never silently lower the bar.
``pytest-cov``/``coverage`` are CI-only extras — this script itself is
stdlib-only and never imports them.

Usage::

    python benchmarks/check_stream_coverage.py coverage-stream.json
        [--baseline benchmarks/stream_coverage_baseline.json]
"""

import argparse
import json
import sys
from pathlib import Path

PACKAGE_MARKER = "repro/streaming/"


def streaming_files(report: dict) -> dict[str, dict]:
    """The report's per-file sections for the streaming package."""
    return {
        path: section
        for path, section in report.get("files", {}).items()
        if PACKAGE_MARKER in path.replace("\\", "/")
    }


def aggregate_percent(files: dict[str, dict]) -> float:
    """Aggregate line coverage across files, as a percentage."""
    covered = sum(f["summary"]["covered_lines"] for f in files.values())
    total = sum(f["summary"]["num_statements"] for f in files.values())
    if total == 0:
        return 0.0
    return 100.0 * covered / total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path,
                        help="coverage.py JSON report path")
    parser.add_argument(
        "--baseline", type=Path,
        default=Path(__file__).parent / "stream_coverage_baseline.json",
        help="committed baseline JSON with a min_percent floor",
    )
    args = parser.parse_args(argv)

    report = json.loads(args.report.read_text())
    baseline = json.loads(args.baseline.read_text())
    floor = float(baseline["min_percent"])

    files = streaming_files(report)
    if not files:
        print(f"FAIL: no '{PACKAGE_MARKER}' files in {args.report} — "
              "was pytest run with --cov=repro.streaming?")
        return 1

    for path in sorted(files):
        summary = files[path]["summary"]
        print(f"  {path}: {summary['covered_lines']}/"
              f"{summary['num_statements']} lines "
              f"({summary['percent_covered']:.1f}%)")
    percent = aggregate_percent(files)
    print(f"streaming package coverage: {percent:.1f}% "
          f"(floor {floor:.1f}%)")

    if percent < floor:
        print(f"FAIL: coverage {percent:.1f}% fell below the committed "
              f"floor {floor:.1f}% — add tests for the uncovered lines "
              f"or (only with a written justification) lower "
              f"{args.baseline}")
        return 1
    print("OK: coverage holds the floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())

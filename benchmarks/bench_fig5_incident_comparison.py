"""Fig. 5 — stability evaluation on selected incidents.

Paper: CDI, Annual Interruption Rate (AIR) and Downtime Percentage
(DP) compared across three incident days and a normal day, normalized.
AIR and DP move sharply on the two data-plane incidents (20240425,
20240702) but are blind to the control-plane incident (20250107),
which only CDI-C captures — the headline "stability is not downtime"
result.
"""

from conftest import print_table, run_once

from repro.scenarios.incidents import normalize_to_daily, simulate_incident_days

METRICS = ("CDI-U", "CDI-P", "CDI-C", "AIR", "DP")


def reproduce_fig5():
    scenarios = simulate_incident_days(seed=0)
    return normalize_to_daily(scenarios)


def test_fig5_incident_comparison(benchmark):
    rows_by_day = run_once(benchmark, reproduce_fig5)
    table_rows = [
        [day] + [f"{rows_by_day[day][m]:.2f}" for m in METRICS]
        for day in ("daily", "20240425", "20240702", "20250107")
    ]
    print_table(
        "Fig. 5: normalized metrics per incident day (daily = 1.00)",
        ["day"] + list(METRICS), table_rows,
    )
    # Data-plane incidents: AIR, DP and CDI-U all react strongly.
    for day in ("20240425", "20240702"):
        assert rows_by_day[day]["AIR"] > 1.5
        assert rows_by_day[day]["DP"] > 5.0
        assert rows_by_day[day]["CDI-U"] > 5.0
    # Control-plane incident: AIR and DP cannot reflect the damage...
    assert 0.5 < rows_by_day["20250107"]["AIR"] < 1.5
    assert 0.5 < rows_by_day["20250107"]["DP"] < 1.5
    # ...but CDI-C captures it.
    assert rows_by_day["20250107"]["CDI-C"] > 10.0

"""Fig. 11 + Table V — A/B test of nc_down_prediction actions (Case 8).

Paper: three candidate live-migration actions were A/B tested for
three months.  Table V: only the Performance sub-metric shows a
significant omnibus difference (Unavailability p = 0.47 and
Control-plane p = 0.89 are not significant); post-hoc analysis finds
all three pairs (A-B, A-C, B-C) significant.  Fig. 11: the normalized
mean Performance Indicators are 0.40 / 0.08 / 0.42 → Action B wins.
"""

import numpy as np
from conftest import print_table, run_once

from repro.abtest.analysis import analyze
from repro.core.events import EventCategory
from repro.scenarios.abtest_case8 import PAPER_MEANS, build_case8_experiment


def reproduce_case8():
    # Three months of rule hits: the A-C difference (0.40 vs 0.42) is
    # small, so detecting it at the paper's p = 0.03 needs the full
    # sample, not a short pilot.
    experiment = build_case8_experiment(hits_per_variant=450, seed=0)
    return experiment, analyze(experiment)


def test_fig11_table5_abtest(benchmark):
    experiment, analysis = run_once(benchmark, reproduce_case8)

    # Table V.
    rows = []
    for category in EventCategory:
        sub = analysis.by_category[category]
        pair_text = ", ".join(
            f"{a}-{b}:{p.pvalue:.3f}{'*' if p.significant else ''}"
            for p in sub.workflow.pairs for a, b in [p.pair]
        ) or "-"
        rows.append((
            category.value, f"{sub.workflow.omnibus.pvalue:.2f}",
            str(sub.significant), pair_text,
        ))
    print_table(
        "Table V: hypothesis test results (* = significant pair)",
        ["sub-metric", "omnibus p", "significant", "post-hoc"], rows,
    )

    # Fig. 11 distributions.
    perf = analysis.by_category[EventCategory.PERFORMANCE]
    sequences = experiment.sequences(EventCategory.PERFORMANCE)
    fig_rows = [
        (
            name, f"{PAPER_MEANS[name]:.2f}", f"{perf.means[name]:.2f}",
            f"{np.std(sequences[name]):.2f}", len(sequences[name]),
        )
        for name in ("A", "B", "C")
    ]
    print_table(
        "Fig. 11: Performance Indicator per action (paper vs reproduced)",
        ["action", "paper mean", "mean", "std", "n"], fig_rows,
    )
    print(f"\nrecommended action: {analysis.recommendation}")

    # Shape assertions matching Table V exactly.
    assert not analysis.by_category[EventCategory.UNAVAILABILITY].significant
    assert not analysis.by_category[EventCategory.CONTROL_PLANE].significant
    assert perf.significant
    assert len(perf.workflow.significant_pairs) == 3
    assert analysis.recommendation == "B"
    for name, paper_mean in PAPER_MEANS.items():
        assert abs(perf.means[name] - paper_mean) < 0.05

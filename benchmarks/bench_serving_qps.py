"""Serving-layer QPS: cached query service vs cold recompute.

The paper's BI system answers interactive CDI queries (Section V:
"aggregates the CDI across diverse dimensions"; Section VI's daily
dashboards, FY trends, and event drill-downs) from materialized
tables, not by rescanning raw rows per query.  This benchmark measures
the repro's analogue: a representative query mix — point lookups,
range scans, category trends, per-dimension group-bys, top-K damaged
VMs, event leaderboards and series — answered by

* a **cold** path: a fresh :class:`repro.serving.QueryService` per
  run, so every rollup is rebuilt from the output tables (the
  "rescan per query" lower bound), and
* a **cached** path: one warm service answering the same mix from its
  generation-stamped LRU.

Besides the printed table, a machine-readable ``BENCH_serving.json``
lands at the repo root with wall times, QPS, the cached-vs-cold
speedup (gated at >=10x by ``check_serving_speedup.py``), and the
warm cache's hit statistics.

Environment knobs: ``REPRO_BENCH_VM_COUNT`` scales the fleet (CI smoke
uses a small one), ``REPRO_BENCH_DAYS`` the backfill length, and
``REPRO_BENCH_SERVING_RESULT_PATH`` redirects the JSON artifact.
"""

import json
import time

from conftest import bench_days, bench_result_path, bench_vm_count, print_table

from repro.core.events import Event, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.backfill import run_days
from repro.pipeline.daily import DailyCdiJob
from repro.scenarios.common import default_weights, fault_to_period
from repro.serving import QueryService
from repro.serving.rollups import CATEGORIES
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import FaultInjector, baseline_rates
from repro.telemetry.topology import build_fleet

DAY = 86400.0
VM_COUNT = bench_vm_count(1000)
DAYS = bench_days(5)
TIMED_REPEATS = 5

RESULT_PATH = bench_result_path(
    "BENCH_serving.json", env="REPRO_BENCH_SERVING_RESULT_PATH"
)


def build_backfilled_job():
    """A topology-aware fleet backfilled over :data:`DAYS` partitions."""
    catalog = default_catalog()
    fleet = build_fleet(seed=0, regions=2, azs_per_region=2,
                        clusters_per_az=1, ncs_per_cluster=2,
                        vms_per_nc=max(1, VM_COUNT // 8))
    vm_ids = sorted(fleet.vms)
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}

    def events_for_day(index, partition):
        injector = FaultInjector(baseline_rates(scale=20.0), seed=index)
        events = []
        for fault in injector.sample(vm_ids, 0.0, DAY):
            period = fault_to_period(fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=600.0, level=period.level,
                attributes={"duration": period.duration},
            ))
        return events

    job = DailyCdiJob(EngineContext(parallelism=8), TableStore(),
                      ConfigDB(), catalog)
    job.store_weights(default_weights())
    run_days(job, events_for_day, services, DAYS)
    return job, fleet


def query_mix(service):
    """One pass of the interactive workload; returns the query count."""
    days = service.days()
    answered = 0
    for day in days:
        service.fleet(day)
        service.top_events(day, 5)
        answered += 2
        for category in CATEGORIES:
            service.top_vms(day, category, 5)
            answered += 1
        for dimension in ("region", "az"):
            service.group_by(day, dimension)
            answered += 1
    service.fleet_range(days[0], days[-1])
    answered += 1
    for category in CATEGORIES:
        service.trend(category)
        answered += 1
    leaders = service.top_events(days[-1], 3)
    answered += 1
    for event, _ in leaders:
        service.event_series(event)
        answered += 1
    return answered


def _best_of(repeats, fn):
    walls = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - started)
    return min(walls)


def test_serving_qps(benchmark):
    job, fleet = build_backfilled_job()

    def cold_pass():
        # A fresh service per pass: every rollup and every cache entry
        # is rebuilt from the output tables.
        return query_mix(QueryService(job.tables,
                                      resolver=fleet.dimensions_of))

    queries = benchmark.pedantic(cold_pass, rounds=1, iterations=1)
    cold_seconds = _best_of(TIMED_REPEATS, cold_pass)

    warm = QueryService(job.tables, resolver=fleet.dimensions_of)
    query_mix(warm)  # fill the cache
    cached_seconds = _best_of(TIMED_REPEATS, lambda: query_mix(warm))
    stats = warm.cache_stats

    speedup = cold_seconds / cached_seconds
    cold_qps = queries / cold_seconds
    cached_qps = queries / cached_seconds

    print_table(
        "Serving layer: cached QPS vs cold recompute",
        ["quantity", "cold (fresh service)", "cached (warm LRU)"],
        [
            ("queries per pass", queries, queries),
            ("wall per pass",
             f"{cold_seconds * 1000:.2f} ms",
             f"{cached_seconds * 1000:.2f} ms"),
            ("QPS", f"{cold_qps:,.0f}", f"{cached_qps:,.0f}"),
            ("speedup", "1.0x", f"{speedup:.1f}x"),
            ("cache hit rate", "-", f"{stats.hit_rate:.1%}"),
        ],
    )

    # The concurrent-serving benchmark merges its section into the same
    # artifact; keep it when this bench rewrites the file.
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    payload = {
        "benchmark": "serving_qps",
        "vm_count": len(fleet.vms),
        "days": DAYS,
        "queries_per_pass": queries,
        "timed_repeats": TIMED_REPEATS,
        "cold_seconds": cold_seconds,
        "cached_seconds": cached_seconds,
        "cached_speedup": speedup,
        "cold_qps": cold_qps,
        "cached_qps": cached_qps,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_hit_rate": stats.hit_rate,
    }
    if "concurrent" in existing:
        payload["concurrent"] = existing["concurrent"]
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nresult JSON: {RESULT_PATH}")

    assert queries > 0
    assert speedup > 1.0

"""Ablation — overlap semantics of Algorithm 1 (max vs sum vs mean).

The paper's Algorithm 1 takes the *maximum* weight where events
overlap.  This ablation contrasts that choice with capped-sum and mean
semantics on event sets with controlled overlap, showing why max is
the right call: it is invariant to re-reporting the same issue through
multiple overlapping events, while sum inflates and mean deflates
damage as the event stream gets noisier.
"""

import numpy as np
from conftest import print_table, run_once

from repro.core.indicator import (
    ServicePeriod,
    WeightedInterval,
    damage_integral,
    damage_integral_with,
)

DAY = 86400.0


def make_intervals(duplication: int, seed: int = 0) -> list[WeightedInterval]:
    """One underlying issue set, each issue reported ``duplication``x
    by overlapping detectors (slightly jittered)."""
    rng = np.random.default_rng(seed)
    intervals = []
    for _ in range(50):
        start = float(rng.uniform(0, DAY - 4000))
        length = float(rng.uniform(600, 3600))
        weight = float(rng.uniform(0.3, 0.9))
        for _ in range(duplication):
            jitter = float(rng.uniform(0, 60))
            intervals.append(
                WeightedInterval(start + jitter, start + length + jitter,
                                 weight)
            )
    return intervals


def run_ablation():
    service = ServicePeriod(0.0, DAY)
    results = {}
    for duplication in (1, 2, 4):
        intervals = make_intervals(duplication)
        results[duplication] = {
            "max": damage_integral(intervals, service) / DAY,
            "sum": damage_integral_with(
                intervals, service,
                lambda ws: min(1.0, sum(ws))) / DAY,
            "mean": damage_integral_with(
                intervals, service,
                lambda ws: sum(ws) / len(ws)) / DAY,
        }
    return results


def test_ablation_overlap_semantics(benchmark):
    results = run_once(benchmark, run_ablation)
    rows = [
        (dup, f"{r['max']:.4f}", f"{r['sum']:.4f}", f"{r['mean']:.4f}")
        for dup, r in results.items()
    ]
    print_table(
        "Ablation: overlap semantics vs event duplication level",
        ["duplication", "max (paper)", "capped sum", "mean"], rows,
    )
    base = results[1]["max"]
    # Max is (nearly) invariant to duplicated reporting...
    assert abs(results[4]["max"] - base) / base < 0.1
    # ...while sum inflates with duplication.
    assert results[4]["sum"] > results[1]["sum"] * 1.2

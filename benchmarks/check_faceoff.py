"""Gate the KPI faceoff artifact (``BENCH_kpi_faceoff.json``).

The faceoff drives AIR and CDI over the outage scenario family; the
artifact is the quantitative evidence for the paper's "stability is
not downtime" thesis.  Hard gates:

* **divergence exists** — at least one ``air_blind`` scenario: AIR
  calls the fleet fine while CDI flags damage;
* **expectations met** — every scenario landed on its designed
  verdict (the quiet member stayed quiet, the hard outage flagged
  both KPIs, ...);
* **RCA accuracy** — Adtributor cluster localization over the scored
  members is at or above :data:`MIN_RCA_ACCURACY`;
* **shape** — all six family members are present.

Usage::

    python benchmarks/check_faceoff.py                  # committed artifact
    python benchmarks/check_faceoff.py --path out.json  # a fresh CI run

Exits non-zero with a diagnostic on any violation.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_kpi_faceoff.json"
)

#: Minimum cluster-localization accuracy over the RCA-scored members.
MIN_RCA_ACCURACY = 0.75

#: Every member the family must contain, in artifact order.
EXPECTED_SCENARIOS = [
    "quiet", "hard-downtime", "nc-batch-outage",
    "performance-degradation", "control-plane-outage", "brief-but-wide",
]


def check(data):
    """All violations found in one artifact (empty list = pass)."""
    errors = []
    names = [s.get("name") for s in data.get("scenarios", [])]
    if names != EXPECTED_SCENARIOS:
        errors.append(
            f"scenario family mismatch: expected {EXPECTED_SCENARIOS}, "
            f"got {names}"
        )
    summary = data.get("summary", {})
    if not summary.get("air_blind_scenarios"):
        errors.append(
            "no air_blind scenario — the artifact must demonstrate at "
            "least one case where AIR says 'fine' but CDI flags damage"
        )
    if summary.get("expectations_met") is not True:
        mismatched = [s["name"] for s in data.get("scenarios", [])
                      if not s.get("matches_expected")]
        errors.append(
            f"scenario verdicts diverged from design: {mismatched}"
        )
    rca = summary.get("rca", {})
    if rca.get("scored", 0) < 1:
        errors.append("no RCA-scored scenarios in the artifact")
    elif rca.get("accuracy", 0.0) < MIN_RCA_ACCURACY:
        wrong = [s["name"] for s in data.get("scenarios", [])
                 if s.get("rca", {}).get("scored")
                 and not s["rca"].get("correct")]
        errors.append(
            f"RCA cluster accuracy {rca.get('accuracy')} below "
            f"{MIN_RCA_ACCURACY} — mislocalized: {wrong}"
        )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH,
                        help="artifact to check (default: committed one)")
    args = parser.parse_args(argv)

    data = json.loads(args.path.read_text())
    for scenario in data.get("scenarios", []):
        kpis = scenario.get("kpis", {})
        air = kpis.get("air", {})
        rca = scenario.get("rca", {})
        print(f"  {scenario.get('name', '?'):<24} "
              f"air_ratio={air.get('ratio', 0.0):8.2f}  "
              f"verdict={scenario.get('verdict', '?'):<10}  "
              f"rca={'-' if not rca.get('scored') else rca.get('correct')}")
    errors = check(data)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    summary = data.get("summary", {})
    rca = summary.get("rca", {})
    print(f"OK: seed {data.get('seed')} — air-blind scenarios "
          f"{summary.get('air_blind_scenarios')}, RCA accuracy "
          f"{rca.get('accuracy')} over {rca.get('scored')} scored")
    return 0


if __name__ == "__main__":
    sys.exit(main())

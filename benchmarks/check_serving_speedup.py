"""CI gate for the serving benchmarks' JSON artifact.

Reads ``BENCH_serving.json`` (written by ``bench_serving_qps.py`` and
``bench_serving_concurrent.py``) and fails (exit 1) when a gated
quantity misses its bar:

* ``cached_speedup`` — the warm LRU must beat cold recompute by
  ``THRESHOLD`` (default 10x; both CI's smoke fleet and the committed
  full-scale artifact are held to it);
* the ``concurrent`` section — when present (or required via
  ``--require-concurrent``), sustained multi-client QPS, p99 latency,
  and the multi-vs-single client speedup are checked against the
  corresponding flags.

Usage::

    python benchmarks/check_serving_speedup.py RESULT.json [THRESHOLD]
        [--concurrent-only] [--require-concurrent]
        [--concurrent-min-qps QPS] [--concurrent-max-p99-ms MS]
        [--min-client-speedup X]

``--concurrent-only`` skips the cached-speedup gate (for smoke jobs
that only ran the concurrent benchmark).
"""

import argparse
import json
import sys
from pathlib import Path


def check_cached(data: dict, threshold: float) -> list[str]:
    """Gate the cached-vs-cold section; returns failure messages."""
    speedup = data.get("cached_speedup")
    if speedup is None:
        return ["no cached_speedup key — was bench_serving_qps run?"]
    print(f"cached {data['cached_seconds'] * 1000:.2f} ms vs cold "
          f"{data['cold_seconds'] * 1000:.2f} ms per pass of "
          f"{data['queries_per_pass']} queries at {data['vm_count']} VMs: "
          f"{speedup:.1f}x (threshold {threshold:.1f}x)")
    if speedup < threshold:
        return [f"cached serving path is below the {threshold:.1f}x bar"]
    return []


def check_concurrent(data: dict, *, required: bool, min_qps: float | None,
                     max_p99_ms: float | None,
                     min_speedup: float | None) -> list[str]:
    """Gate the concurrent section; returns failure messages."""
    section = data.get("concurrent")
    if section is None:
        if required or min_qps is not None or max_p99_ms is not None \
                or min_speedup is not None:
            return ["no concurrent section — was "
                    "bench_serving_concurrent run?"]
        return []
    qps = section["multi_client_qps"]
    p99 = section["multi_p99_ms"]
    speedup = section["client_speedup"]
    print(f"concurrent: {section['clients']} clients sustained {qps:,.0f} "
          f"QPS (p99 {p99:.2f} ms) vs single-client "
          f"{section['single_client_qps']:,.0f} QPS — {speedup:.1f}x, "
          f"{section['backfill_writes']} backfill writes during the run")
    failures = []
    if min_qps is not None and qps < min_qps:
        failures.append(
            f"multi-client QPS {qps:,.0f} is below the {min_qps:,.0f} floor")
    if max_p99_ms is not None and p99 > max_p99_ms:
        failures.append(
            f"multi-client p99 {p99:.2f} ms exceeds the "
            f"{max_p99_ms:.2f} ms ceiling")
    if min_speedup is not None and speedup < min_speedup:
        failures.append(
            f"client speedup {speedup:.1f}x is below the "
            f"{min_speedup:.1f}x bar")
    return failures


def main(argv: list[str]) -> int:
    """Parse arguments, run the enabled gates, return the exit code."""
    parser = argparse.ArgumentParser(
        description="Gate BENCH_serving.json quantities.")
    parser.add_argument("result", type=Path, help="path to the JSON artifact")
    parser.add_argument("threshold", type=float, nargs="?", default=10.0,
                        help="cached-vs-cold speedup floor (default 10)")
    parser.add_argument("--concurrent-only", action="store_true",
                        help="skip the cached-speedup gate")
    parser.add_argument("--require-concurrent", action="store_true",
                        help="fail when the concurrent section is missing")
    parser.add_argument("--concurrent-min-qps", type=float, default=None,
                        metavar="QPS",
                        help="sustained multi-client QPS floor")
    parser.add_argument("--concurrent-max-p99-ms", type=float, default=None,
                        metavar="MS", help="multi-client p99 ceiling (ms)")
    parser.add_argument("--min-client-speedup", type=float, default=None,
                        metavar="X",
                        help="multi-vs-single client speedup floor")
    args = parser.parse_args(argv[1:])

    data = json.loads(args.result.read_text())
    failures = []
    if not args.concurrent_only:
        failures += check_cached(data, args.threshold)
    failures += check_concurrent(
        data, required=args.require_concurrent,
        min_qps=args.concurrent_min_qps,
        max_p99_ms=args.concurrent_max_p99_ms,
        min_speedup=args.min_client_speedup)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""CI gate: the cached serving path must beat cold recompute by >=10x.

Reads the JSON artifact written by ``bench_serving_qps.py`` and fails
(exit 1) when ``cached_speedup`` falls below the threshold.  Both CI's
smoke fleet and the committed full-scale artifact are held to the 10x
bar of the serving-layer acceptance criteria.

Usage::

    python benchmarks/check_serving_speedup.py RESULT.json [THRESHOLD]
"""

import json
import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[1])
    threshold = float(argv[2]) if len(argv) == 3 else 10.0
    data = json.loads(path.read_text())
    speedup = data.get("cached_speedup")
    if speedup is None:
        print(f"{path}: no cached_speedup key — was bench_serving_qps run?",
              file=sys.stderr)
        return 1
    print(f"cached {data['cached_seconds'] * 1000:.2f} ms vs cold "
          f"{data['cold_seconds'] * 1000:.2f} ms per pass of "
          f"{data['queries_per_pass']} queries at {data['vm_count']} VMs: "
          f"{speedup:.1f}x (threshold {threshold:.1f}x)")
    if speedup < threshold:
        print(f"FAIL: cached serving path is below the {threshold:.1f}x bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Fig. 2 — distribution of tickets related to ECS stability.

Paper: of all stability tickets from January 2023 to June 2024, 27%
concern unavailability, 44% performance, and 29% control-plane issues
— the motivating evidence that downtime alone misses most of
stability.

We regenerate 18 months of synthetic tickets, classify them with the
naive-Bayes PAI-model stand-in, and report the classified shares.
"""

from conftest import print_table, run_once

from repro.core.events import EventCategory
from repro.telemetry.tickets import PAPER_TICKET_MIXTURE, TicketGenerator
from repro.tickets.classifier import train_default_classifier

TICKETS = 6000


def reproduce_fig2() -> dict[EventCategory, float]:
    generator = TicketGenerator(seed=20230101)
    tickets = generator.generate(TICKETS, targets=["fleet"])
    classifier = train_default_classifier(seed=7)
    predictions = classifier.predict([t.text for t in tickets])
    shares = {
        category: sum(1 for p in predictions if p is category) / len(predictions)
        for category in EventCategory
    }
    return shares


def test_fig2_ticket_distribution(benchmark):
    shares = run_once(benchmark, reproduce_fig2)
    rows = [
        (
            category.value,
            f"{PAPER_TICKET_MIXTURE[category]:.0%}",
            f"{shares[category]:.1%}",
        )
        for category in EventCategory
    ]
    print_table("Fig. 2: ticket distribution (paper vs reproduced)",
                ["category", "paper", "reproduced"], rows)
    # Shape check: performance dominates, unavailability is a minority.
    assert shares[EventCategory.PERFORMANCE] == max(shares.values())
    assert abs(shares[EventCategory.UNAVAILABILITY] - 0.27) < 0.05
    assert abs(shares[EventCategory.PERFORMANCE] - 0.44) < 0.05
    assert abs(shares[EventCategory.CONTROL_PLANE] - 0.29) < 0.05

"""Gate the out-of-core scaling artifact (``BENCH_fleet_scale.json``).

Two properties are enforced, both direct consequences of the
out-of-core design (spill-staged events + per-shard generation and
compute) that this repo's fleet-scale path promises:

* **Fixed memory ceiling** — every scale point's peak RSS stays under
  :data:`RSS_CEILING_MB`, a constant chosen with ~2.4x headroom over
  the measured 100k-VM point.  A day's events must never be resident.
* **Sublinear growth** — between consecutive scale points, peak RSS
  must grow strictly slower than fleet size; across the whole sweep
  the growth exponent ``d log(rss) / d log(vms)`` must stay under
  :data:`MAX_GROWTH_EXPONENT`.  (Linear growth would mean some
  structure is still O(fleet).)

Usage::

    python benchmarks/check_fleet_scale.py                  # committed artifact
    python benchmarks/check_fleet_scale.py --smoke \\
        --path BENCH_fleet_scale_smoke.json                 # CI single-point run

``--smoke`` accepts a single-point artifact (CI runs one 10k-VM point
per push): the ceiling and throughput gates still apply, the growth
gates need >= 2 points and are skipped.  Exits non-zero with a
diagnostic on any violation.
"""

import argparse
import json
import math
import sys
from pathlib import Path

#: Hard per-point peak-RSS ceiling.  Measured 100k-VM point: ~212 MB
#: (interpreter + numpy baseline is ~100 MB of that).
RSS_CEILING_MB = 512.0
#: Upper bound on the end-to-end RSS growth exponent.  Measured: ~0.15.
MAX_GROWTH_EXPONENT = 0.9

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet_scale.json"


def check(data, *, smoke=False):
    """All violations found in one artifact (empty list = pass)."""
    errors = []
    points = data.get("points", [])
    if not points:
        return ["artifact has no scale points"]
    if not smoke and len(points) < 2:
        errors.append(
            f"full mode needs >= 2 scale points for the growth gates, "
            f"got {len(points)} (use --smoke for single-point runs)"
        )

    counts = [p["vm_count"] for p in points]
    if counts != sorted(counts) or len(set(counts)) != len(counts):
        errors.append(f"scale points must be strictly increasing: {counts}")

    for p in points:
        if p["event_count"] <= 0:
            errors.append(f"{p['vm_count']} VMs: no events processed")
        if p["rows_per_second"] <= 0:
            errors.append(f"{p['vm_count']} VMs: non-positive throughput")
        if p["spool_bytes"] <= 0:
            errors.append(
                f"{p['vm_count']} VMs: nothing spilled to disk — the "
                f"out-of-core staging path did not run"
            )
        if p["peak_rss_mb"] > RSS_CEILING_MB:
            errors.append(
                f"{p['vm_count']} VMs: peak RSS {p['peak_rss_mb']:.1f} MB "
                f"exceeds the {RSS_CEILING_MB:.0f} MB ceiling"
            )

    for prev, cur in zip(points, points[1:]):
        vm_ratio = cur["vm_count"] / prev["vm_count"]
        rss_ratio = cur["peak_rss_mb"] / prev["peak_rss_mb"]
        if rss_ratio >= vm_ratio:
            errors.append(
                f"{prev['vm_count']} -> {cur['vm_count']} VMs: peak RSS "
                f"grew {rss_ratio:.2f}x for a {vm_ratio:.0f}x fleet — "
                f"not sublinear"
            )
    if len(points) >= 2:
        first, last = points[0], points[-1]
        exponent = (
            math.log(last["peak_rss_mb"] / first["peak_rss_mb"])
            / math.log(last["vm_count"] / first["vm_count"])
        )
        if exponent > MAX_GROWTH_EXPONENT:
            errors.append(
                f"RSS growth exponent {exponent:.2f} exceeds "
                f"{MAX_GROWTH_EXPONENT} over "
                f"{first['vm_count']} -> {last['vm_count']} VMs"
            )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH,
                        help="artifact to check (default: committed one)")
    parser.add_argument("--smoke", action="store_true",
                        help="accept a single-point (CI smoke) artifact")
    args = parser.parse_args(argv)

    data = json.loads(args.path.read_text())
    errors = check(data, smoke=args.smoke)
    points = data.get("points", [])
    for p in points:
        print(f"  {p['vm_count']:>7,} VMs: {p['event_count']:>7,} events, "
              f"{p['rows_per_second']:>8,.0f} rows/s, "
              f"peak RSS {p['peak_rss_mb']:.1f} MB")
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    mode = "smoke" if args.smoke else "full"
    print(f"OK ({mode}): {len(points)} point(s) under the "
          f"{RSS_CEILING_MB:.0f} MB ceiling with sublinear RSS growth")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series, so ``pytest benchmarks/
--benchmark-only -s`` doubles as the experiment reproduction run.
Simulation benchmarks use ``benchmark.pedantic`` with a single round:
the timing is reported for completeness, but the artifact is the
printed table.

The environment knobs every bench script honours are parsed here, in
one place, so CI and local runs configure them identically:

* ``REPRO_BENCH_VM_COUNT`` — fleet size (:func:`bench_vm_count`);
* ``REPRO_BENCH_FLEET_VM_COUNTS`` — comma-separated scaling-curve
  points (:func:`bench_vm_counts`);
* ``REPRO_BENCH_DAYS`` — backfill length (:func:`bench_days`);
* ``REPRO_BENCH_BACKEND`` — executor backend (:func:`bench_backend`);
* ``REPRO_BENCH_RESULT_PATH`` / ``REPRO_BENCH_SERVING_RESULT_PATH`` /
  ... — JSON artifact destinations (:func:`bench_result_path`);
* ``REPRO_BENCH_CLIENTS`` — concurrent closed-loop clients for the
  serving load benchmark (:func:`bench_clients`);
* ``REPRO_BENCH_DURATION_S`` — measurement window per load phase in
  seconds (:func:`bench_duration_s`);
* ``REPRO_CHAOS_SEED`` — pins the chaos-test seed matrix to one seed
  (:func:`chaos_seed`).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Sequence

#: The repository root (where committed ``BENCH_*.json`` artifacts live).
REPO_ROOT = Path(__file__).resolve().parent.parent


def env_int(name: str, default: int) -> int:
    """Integer env knob with a default."""
    return int(os.environ.get(name, str(default)))


def bench_vm_count(default: int) -> int:
    """Fleet size for one-fleet benches (``REPRO_BENCH_VM_COUNT``)."""
    return env_int("REPRO_BENCH_VM_COUNT", default)


def bench_vm_counts(default: Sequence[int]) -> list[int]:
    """Scaling-curve VM counts (``REPRO_BENCH_FLEET_VM_COUNTS``).

    The knob is a comma-separated list, e.g. ``1000,10000,100000``.
    """
    raw = os.environ.get("REPRO_BENCH_FLEET_VM_COUNTS")
    if raw is None:
        return list(default)
    return [int(part) for part in raw.split(",") if part.strip()]


def bench_days(default: int) -> int:
    """Backfill length in days (``REPRO_BENCH_DAYS``)."""
    return env_int("REPRO_BENCH_DAYS", default)


def bench_clients(default: int) -> int:
    """Concurrent closed-loop clients (``REPRO_BENCH_CLIENTS``)."""
    return env_int("REPRO_BENCH_CLIENTS", default)


def bench_duration_s(default: float) -> float:
    """Seconds per load-measurement phase (``REPRO_BENCH_DURATION_S``)."""
    return float(os.environ.get("REPRO_BENCH_DURATION_S", str(default)))


def bench_backend(default: str = "thread") -> str:
    """Executor backend (``REPRO_BENCH_BACKEND``)."""
    return os.environ.get("REPRO_BENCH_BACKEND", default)


def bench_result_path(filename: str,
                      env: str = "REPRO_BENCH_RESULT_PATH") -> Path:
    """Where a bench writes its JSON artifact.

    Defaults to ``filename`` at the repo root (the committed artifact);
    the ``env`` variable redirects it (CI smoke runs write elsewhere so
    the committed numbers are never clobbered by a scaled-down run).
    """
    return Path(os.environ.get(env) or REPO_ROOT / filename)


def chaos_seed() -> int | None:
    """Pinned chaos seed (``REPRO_CHAOS_SEED``), or ``None`` for the
    full seed matrix."""
    raw = os.environ.get("REPRO_CHAOS_SEED")
    return None if raw is None else int(raw)


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render one reproduced table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def print_series(title: str, series: Mapping[str, Sequence[float]],
                 index_name: str = "day") -> None:
    """Render aligned numeric series (a figure's data) to stdout."""
    names = list(series)
    length = max(len(s) for s in series.values())
    rows = []
    for i in range(length):
        row = [i + 1]
        for name in names:
            values = series[name]
            row.append(f"{values[i]:.5f}" if i < len(values) else "")
        rows.append(row)
    print_table(title, [index_name] + names, rows)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a scenario exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)

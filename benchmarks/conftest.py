"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series, so ``pytest benchmarks/
--benchmark-only -s`` doubles as the experiment reproduction run.
Simulation benchmarks use ``benchmark.pedantic`` with a single round:
the timing is reported for completeness, but the artifact is the
printed table.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render one reproduced table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def print_series(title: str, series: Mapping[str, Sequence[float]],
                 index_name: str = "day") -> None:
    """Render aligned numeric series (a figure's data) to stdout."""
    names = list(series)
    length = max(len(s) for s in series.values())
    rows = []
    for i in range(length):
        row = [i + 1]
        for name in names:
            values = series[name]
            row.append(f"{values[i]:.5f}" if i < len(values) else "")
        rows.append(row)
    print_table(title, [index_name] + names, rows)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a scenario exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)

"""Fig. 8 — Performance Indicator of deployment architectures (Case 5).

Paper: homogeneous and hybrid arms track each other until Day 13,
when CPU contention from an incompatibility on one machine model makes
the hybrid curve climb rapidly; the rollback brings the curves back
together by Day 28.
"""

from conftest import print_series, run_once

from repro.scenarios.architecture import (
    divergence_ratio,
    simulate_architecture_comparison,
)


def reproduce_fig8():
    return simulate_architecture_comparison(seed=0)


def test_fig8_architecture_comparison(benchmark):
    curve = run_once(benchmark, reproduce_fig8)
    print_series(
        "Fig. 8: Performance Indicator per deployment architecture",
        {
            "homogeneous": [d.homogeneous for d in curve],
            "hybrid": [d.hybrid for d in curve],
        },
    )
    pre = divergence_ratio(curve, (1, 12))
    mid = divergence_ratio(curve, (14, 20))
    end = divergence_ratio(curve, (27, 28))
    print(f"\nhybrid/homogeneous ratio: pre-onset {pre:.2f}, "
          f"during bug {mid:.2f}, after rollback {end:.2f}")
    # Shape: minimal variance initially, sharp divergence after Day 13,
    # convergence by Day 28.
    assert 0.5 < pre < 2.0
    assert mid > 5.0
    assert 0.4 < end < 2.5

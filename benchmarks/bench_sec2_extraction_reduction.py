"""Section II-C — data-volume reduction through event extraction.

Paper: extraction collapses hundreds of TB of raw multi-modal data to
GBs of events per day, "significantly enhancing information density",
because the vast majority of machines run normally.  We reproduce the
*ratio* at simulator scale: raw metric samples + log lines in, events
out, with the reduction factor reported per input modality.
"""

from conftest import print_table, run_once

from repro.cloudbot.collector import DataCollector
from repro.cloudbot.extractor import (
    EventExtractor,
    default_log_rules,
    default_metric_rules,
)
from repro.telemetry.faults import FaultInjector, baseline_rates
from repro.telemetry.topology import build_fleet

DAY = 86400.0


def reproduce_reduction():
    fleet = build_fleet(seed=3, regions=1, azs_per_region=1,
                        clusters_per_az=2, ncs_per_cluster=4, vms_per_nc=2)
    vm_ids = sorted(fleet.vms)
    # Long-ish background faults so the 60 s sampling grid sees them.
    rates = [
        type(r)(r.kind, r.per_target_per_day * 5.0,
                max(r.mean_duration, 600.0), r.duration_sigma)
        for r in baseline_rates()
    ]
    injector = FaultInjector(rates, seed=3)
    faults = injector.sample(vm_ids, 0.0, DAY)
    # One NIC flap so the log modality has a true signal to extract.
    from repro.telemetry.faults import Fault, FaultKind
    faults.append(Fault(FaultKind.NIC_FLAPPING, vm_ids[0], DAY / 2, 90.0))
    collector = DataCollector(fleet, seed=3, interval=60.0)
    bundle = collector.collect(vm_ids, 0.0, DAY, faults=faults)
    extractor = EventExtractor(metric_rules=default_metric_rules(),
                               log_rules=default_log_rules())
    metric_events = extractor.extract_from_metrics(bundle.metrics)
    log_events = extractor.extract_from_logs(bundle.logs)
    return {
        "metric_samples": len(bundle.metrics),
        "log_lines": len(bundle.logs),
        "metric_events": len(metric_events),
        "log_events": len(log_events),
    }


def test_sec2_extraction_reduction(benchmark):
    counts = run_once(benchmark, reproduce_reduction)
    raw_total = counts["metric_samples"] + counts["log_lines"]
    event_total = counts["metric_events"] + counts["log_events"]
    reduction = raw_total / max(1, event_total)
    print_table(
        "Section II-C: raw data vs extracted events (one day)",
        ["modality", "raw records", "events", "reduction"],
        [
            ("metrics", counts["metric_samples"], counts["metric_events"],
             f"{counts['metric_samples'] / max(1, counts['metric_events']):,.0f}x"),
            ("logs", counts["log_lines"], counts["log_events"],
             f"{counts['log_lines'] / max(1, counts['log_events']):,.0f}x"),
            ("total", raw_total, event_total, f"{reduction:,.0f}x"),
        ],
    )
    # Paper: hundreds of TB -> GB (~10^2-10^5 x).  At simulator scale
    # the same mechanism must still deliver a large reduction.
    assert reduction > 50
    assert event_total >= 10
    assert counts["log_events"] >= 1

"""Legacy setup shim.

The sandbox's setuptools predates the built-in ``bdist_wheel`` command
and the ``wheel`` package is unavailable offline, so ``pip install -e .``
falls back to this shim (run ``pip install -e . --no-build-isolation``
or ``python setup.py develop``).
"""

from setuptools import setup

setup()
